#include "sim/scenario.h"

#include <charconv>
#include <cstdio>
#include <functional>
#include <sstream>
#include <system_error>
#include <utility>

#include "drone/trajectory.h"

namespace rfly::sim {

namespace {

// --- Value formatting/parsing -------------------------------------------
//
// All numeric I/O goes through std::to_chars/std::from_chars: unlike
// strtod/printf they never consult the C locale, so a scenario file written
// under LC_NUMERIC=C parses identically in a process running under de_DE
// (where strtod would stop at the '.' and read "3.5" as 3).

/// Shortest decimal form that round-trips the double exactly (the to_chars
/// general format guarantees shortest-round-trip, e.g. "40" not
/// "40.000000000000000").
std::string format_double(double v) {
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 40 chars always fit the shortest form of a double
  return std::string(buf, ptr);
}

bool parse_double(const std::string& text, double& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || begin == end) return false;
  out = v;
  return true;
}

bool parse_bool(const std::string& text, bool& out) {
  if (text == "true" || text == "1") return out = true, true;
  if (text == "false" || text == "0") return out = false, true;
  return false;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, v, 10);
  if (ec != std::errc() || ptr != end || begin == end) return false;
  out = v;
  return true;
}

bool parse_int(const std::string& text, int& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  int v = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, v, 10);
  if (ec != std::errc() || ptr != end || begin == end) return false;
  out = v;
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::string format_vec3(const Vec3& v) {
  return format_double(v.x) + " " + format_double(v.y) + " " + format_double(v.z);
}

bool parse_vec3(const std::string& text, Vec3& out) {
  const auto toks = split_ws(text);
  if (toks.size() != 3) return false;
  return parse_double(toks[0], out.x) && parse_double(toks[1], out.y) &&
         parse_double(toks[2], out.z);
}

// --- Scalar-field registry ----------------------------------------------
// One table drives serialize(), parse_scenario(), and apply_override(), so
// the three can never disagree about the key set.

struct FieldDef {
  std::string key;
  std::function<std::string(const Scenario&)> get;
  std::function<bool(Scenario&, const std::string&)> set;
};

template <typename Ref>  // Ref: Scenario& -> double&
FieldDef double_field(std::string key, Ref ref) {
  return {std::move(key),
          [ref](const Scenario& s) {
            return format_double(ref(const_cast<Scenario&>(s)));
          },
          [ref](Scenario& s, const std::string& v) {
            return parse_double(v, ref(s));
          }};
}

template <typename Ref>  // Ref: Scenario& -> bool&
FieldDef bool_field(std::string key, Ref ref) {
  return {std::move(key),
          [ref](const Scenario& s) {
            return std::string(ref(const_cast<Scenario&>(s)) ? "true" : "false");
          },
          [ref](Scenario& s, const std::string& v) { return parse_bool(v, ref(s)); }};
}

template <typename Ref>  // Ref: Scenario& -> int&
FieldDef int_field(std::string key, Ref ref) {
  return {std::move(key),
          [ref](const Scenario& s) {
            return std::to_string(ref(const_cast<Scenario&>(s)));
          },
          [ref](Scenario& s, const std::string& v) { return parse_int(v, ref(s)); }};
}

template <typename Ref>  // Ref: Scenario& -> Vec3&
FieldDef vec3_field(std::string key, Ref ref) {
  return {std::move(key),
          [ref](const Scenario& s) {
            return format_vec3(ref(const_cast<Scenario&>(s)));
          },
          [ref](Scenario& s, const std::string& v) { return parse_vec3(v, ref(s)); }};
}

const std::vector<FieldDef>& registry() {
  static const std::vector<FieldDef> fields = [] {
    std::vector<FieldDef> f;
    f.push_back({"name", [](const Scenario& s) { return s.name; },
                 [](Scenario& s, const std::string& v) {
                   return v.empty() ? false : (s.name = v, true);
                 }});
    f.push_back({"seed",
                 [](const Scenario& s) { return std::to_string(s.seed); },
                 [](Scenario& s, const std::string& v) {
                   return parse_u64(v, s.seed);
                 }});

    f.push_back({"env.kind",
                 [](const Scenario& s) {
                   return std::string(s.environment.kind == EnvironmentKind::kEmpty
                                          ? "empty"
                                          : "warehouse");
                 },
                 [](Scenario& s, const std::string& v) {
                   if (v == "empty") return s.environment.kind = EnvironmentKind::kEmpty, true;
                   if (v == "warehouse") return s.environment.kind = EnvironmentKind::kWarehouse, true;
                   return false;
                 }});
    f.push_back(double_field("env.width_m",
                             [](Scenario& s) -> double& { return s.environment.width_m; }));
    f.push_back(double_field("env.height_m",
                             [](Scenario& s) -> double& { return s.environment.height_m; }));
    f.push_back(int_field("env.shelf_rows",
                          [](Scenario& s) -> int& { return s.environment.shelf_rows; }));
    f.push_back(bool_field("env.wall",
                           [](Scenario& s) -> bool& { return s.environment.wall; }));
    f.push_back(double_field("env.wall_x",
                             [](Scenario& s) -> double& { return s.environment.wall_x; }));
    f.push_back(double_field("env.wall_y0",
                             [](Scenario& s) -> double& { return s.environment.wall_y0; }));
    f.push_back(double_field("env.wall_y1",
                             [](Scenario& s) -> double& { return s.environment.wall_y1; }));

    f.push_back(vec3_field("reader_position",
                           [](Scenario& s) -> Vec3& { return s.reader_position; }));

    f.push_back(double_field("system.carrier_hz",
                             [](Scenario& s) -> double& { return s.system.carrier_hz; }));
    f.push_back(double_field("system.freq_shift_hz",
                             [](Scenario& s) -> double& { return s.system.freq_shift_hz; }));
    f.push_back(double_field("system.blf_hz",
                             [](Scenario& s) -> double& { return s.system.blf_hz; }));
    f.push_back(double_field("system.reader_eirp_dbm",
                             [](Scenario& s) -> double& { return s.system.reader_eirp_dbm; }));
    f.push_back(double_field("system.reader_rx_gain_dbi",
                             [](Scenario& s) -> double& { return s.system.reader_rx_gain_dbi; }));
    f.push_back(double_field("system.reader_noise_figure_db",
                             [](Scenario& s) -> double& { return s.system.reader_noise_figure_db; }));
    f.push_back(double_field("system.relay_downlink_gain_db",
                             [](Scenario& s) -> double& { return s.system.relay_downlink_gain_db; }));
    f.push_back(double_field("system.relay_uplink_gain_db",
                             [](Scenario& s) -> double& { return s.system.relay_uplink_gain_db; }));
    f.push_back(double_field("system.relay_downlink_p1db_dbm",
                             [](Scenario& s) -> double& { return s.system.relay_downlink_p1db_dbm; }));
    f.push_back(double_field("system.relay_uplink_max_out_dbm",
                             [](Scenario& s) -> double& { return s.system.relay_uplink_max_out_dbm; }));
    f.push_back(double_field("system.relay_antenna_gain_dbi",
                             [](Scenario& s) -> double& { return s.system.relay_antenna_gain_dbi; }));
    f.push_back(double_field("system.relay_hardware_phase_rad",
                             [](Scenario& s) -> double& { return s.system.relay_hardware_phase_rad; }));
    f.push_back(double_field("system.embedded_coupling_db",
                             [](Scenario& s) -> double& { return s.system.embedded_coupling_db; }));
    f.push_back(bool_field("system.channel_noise",
                           [](Scenario& s) -> bool& { return s.system.channel_noise; }));
    f.push_back(double_field("system.estimate_integration_s",
                             [](Scenario& s) -> double& { return s.system.estimate_integration_s; }));
    f.push_back(double_field("system.shadowing_std_db",
                             [](Scenario& s) -> double& { return s.system.shadowing_std_db; }));
    f.push_back(double_field("system.amplitude_ripple_std_db",
                             [](Scenario& s) -> double& { return s.system.amplitude_ripple_std_db; }));
    f.push_back(double_field("system.phase_ripple_std_rad",
                             [](Scenario& s) -> double& { return s.system.phase_ripple_std_rad; }));
    f.push_back(double_field("system.decode_snr_threshold_db",
                             [](Scenario& s) -> double& { return s.system.decode_snr_threshold_db; }));
    f.push_back(bool_field("system.include_direct_path",
                           [](Scenario& s) -> bool& { return s.system.include_direct_path; }));
    f.push_back(double_field("system.tag.sensitivity_dbm",
                             [](Scenario& s) -> double& { return s.system.tag.sensitivity_dbm; }));
    f.push_back(double_field("system.tag.antenna_gain_dbi",
                             [](Scenario& s) -> double& { return s.system.tag.antenna_gain_dbi; }));
    f.push_back(double_field("system.tag.rho_on",
                             [](Scenario& s) -> double& { return s.system.tag.rho_on; }));
    f.push_back(double_field("system.tag.rho_off",
                             [](Scenario& s) -> double& { return s.system.tag.rho_off; }));

    f.push_back(double_field("flight.position_jitter_std_m",
                             [](Scenario& s) -> double& { return s.flight.position_jitter_std_m; }));
    f.push_back(double_field("tracking.noise_std_m",
                             [](Scenario& s) -> double& { return s.tracking.noise_std_m; }));
    f.push_back(double_field("tracking.drift_std_m",
                             [](Scenario& s) -> double& { return s.tracking.drift_std_m; }));

    f.push_back(int_field("inventory.q",
                          [](Scenario& s) -> int& { return s.inventory.q; }));
    f.push_back(int_field("inventory.max_rounds",
                          [](Scenario& s) -> int& { return s.inventory.max_rounds; }));
    f.push_back(double_field("inventory.decode_snr_threshold_db",
                             [](Scenario& s) -> double& { return s.inventory.decode_snr_threshold_db; }));

    f.push_back(double_field("localize.search_halfwidth_m",
                             [](Scenario& s) -> double& { return s.search_halfwidth_m; }));
    f.push_back(double_field("localize.grid_resolution_m",
                             [](Scenario& s) -> double& { return s.grid_resolution_m; }));
    f.push_back(double_field("localize.peak_threshold_fraction",
                             [](Scenario& s) -> double& { return s.peak_threshold_fraction; }));
    f.push_back(double_field("localize.grid_margin_to_path_m",
                             [](Scenario& s) -> double& { return s.grid_margin_to_path_m; }));
    f.push_back(bool_field("localize.tags_below_path",
                           [](Scenario& s) -> bool& { return s.tags_below_path; }));
    f.push_back({"localize.threads",
                 [](const Scenario& s) { return std::to_string(s.localize_threads); },
                 [](Scenario& s, const std::string& v) {
                   std::uint64_t threads = 0;
                   if (!parse_u64(v, threads)) return false;
                   s.localize_threads = static_cast<unsigned>(threads);
                   return true;
                 }});
    f.push_back({"localize.sar_kernel",
                 [](const Scenario& s) {
                   return std::string(localize::sar_kernel_name(s.sar_kernel));
                 },
                 [](Scenario& s, const std::string& v) {
                   return localize::parse_sar_kernel(v, s.sar_kernel);
                 }});
    f.push_back({"localize.search",
                 [](const Scenario& s) {
                   return std::string(localize::sar_search_name(s.sar_search));
                 },
                 [](Scenario& s, const std::string& v) {
                   return localize::parse_sar_search(v, s.sar_search);
                 }});
    f.push_back({"measure.plane",
                 [](const Scenario& s) {
                   return std::string(core::measure_plane_name(s.measure_plane));
                 },
                 [](Scenario& s, const std::string& v) {
                   return core::parse_measure_plane(v, s.measure_plane);
                 }});

    f.push_back(double_field("faults.dropout",
                             [](Scenario& s) -> double& { return s.faults.dropout; }));
    f.push_back(double_field("faults.phase_burst",
                             [](Scenario& s) -> double& { return s.faults.phase_burst; }));
    f.push_back(double_field("faults.phase_burst_std_rad",
                             [](Scenario& s) -> double& { return s.faults.phase_burst_std_rad; }));
    f.push_back(double_field("faults.relay_cfo_std_rad",
                             [](Scenario& s) -> double& { return s.faults.relay_cfo_std_rad; }));
    f.push_back(double_field("faults.wind_jitter_std_m",
                             [](Scenario& s) -> double& { return s.faults.wind_jitter_std_m; }));
    f.push_back(double_field("faults.embedded_loss",
                             [](Scenario& s) -> double& { return s.faults.embedded_loss; }));
    f.push_back(int_field("faults.max_attempts",
                          [](Scenario& s) -> int& { return s.faults.max_attempts; }));

    f.push_back(bool_field("fleet.enabled",
                           [](Scenario& s) -> bool& { return s.fleet.enabled; }));
    f.push_back(int_field("fleet.n_relays",
                          [](Scenario& s) -> int& { return s.fleet.n_relays; }));
    f.push_back(double_field("fleet.per_hop_shift_hz",
                             [](Scenario& s) -> double& { return s.fleet.per_hop_shift_hz; }));
    f.push_back(double_field("fleet.stability_isolation_db",
                             [](Scenario& s) -> double& { return s.fleet.stability_isolation_db; }));
    f.push_back(double_field("fleet.relay_spacing_m",
                             [](Scenario& s) -> double& { return s.fleet.relay_spacing_m; }));
    f.push_back({"fleet.planner",
                 [](const Scenario& s) {
                   return std::string(fleet_planner_name(s.fleet.planner));
                 },
                 [](Scenario& s, const std::string& v) {
                   return parse_fleet_planner(v, s.fleet.planner);
                 }});
    f.push_back(double_field("fleet.battery_j",
                             [](Scenario& s) -> double& { return s.fleet.battery_j; }));
    f.push_back(double_field("fleet.hover_power_w",
                             [](Scenario& s) -> double& { return s.fleet.hover_power_w; }));
    f.push_back(double_field("fleet.travel_power_w",
                             [](Scenario& s) -> double& { return s.fleet.travel_power_w; }));
    f.push_back(double_field("fleet.speed_mps",
                             [](Scenario& s) -> double& { return s.fleet.speed_mps; }));
    f.push_back(double_field("fleet.dwell_s",
                             [](Scenario& s) -> double& { return s.fleet.dwell_s; }));
    return f;
  }();
  return fields;
}

const FieldDef* find_field(const std::string& key) {
  for (const auto& field : registry()) {
    if (field.key == key) return &field;
  }
  return nullptr;
}

bool set_leg(Scenario& scenario, const std::string& value) {
  const auto toks = split_ws(value);
  if (toks.size() != 7) return false;
  FlightLeg leg;
  std::uint64_t points = 0;
  if (!parse_double(toks[0], leg.start.x) || !parse_double(toks[1], leg.start.y) ||
      !parse_double(toks[2], leg.start.z) || !parse_double(toks[3], leg.end.x) ||
      !parse_double(toks[4], leg.end.y) || !parse_double(toks[5], leg.end.z) ||
      !parse_u64(toks[6], points) || points == 0) {
    return false;
  }
  leg.points = static_cast<std::size_t>(points);
  scenario.legs.push_back(leg);
  return true;
}

bool set_tag(Scenario& scenario, const std::string& value) {
  const auto toks = split_ws(value);
  if (toks.size() < 4) return false;
  TagSpec tag;
  std::uint64_t index = 0;
  if (!parse_u64(toks[0], index) || !parse_double(toks[1], tag.position.x) ||
      !parse_double(toks[2], tag.position.y) ||
      !parse_double(toks[3], tag.position.z)) {
    return false;
  }
  tag.epc_index = static_cast<std::uint32_t>(index);
  // The description is the remainder of the line (may contain spaces).
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    pos = value.find_first_not_of(" \t", pos);
    pos = value.find_first_of(" \t", pos);
  }
  if (pos != std::string::npos) tag.description = trim(value.substr(pos));
  scenario.tags.push_back(tag);
  return true;
}

bool set_fleet_reader(Scenario& scenario, const std::string& value) {
  Vec3 position;
  if (!parse_vec3(value, position)) return false;
  scenario.fleet.readers.push_back(position);
  return true;
}

}  // namespace

channel::Environment EnvironmentSpec::build() const {
  channel::Environment env;
  if (kind == EnvironmentKind::kWarehouse) {
    env = channel::warehouse_environment(width_m, height_m, shelf_rows);
  }
  if (wall) {
    env.add_obstacle({{{wall_x, wall_y0}, {wall_x, wall_y1}}, channel::concrete()});
  }
  return env;
}

Status validate(const Scenario& scenario) {
  const auto invalid = [&](const std::string& msg) {
    return Status{StatusCode::kInvalidArgument, msg}.with_context("scenario '" +
                                                                  scenario.name + "'");
  };
  if (scenario.environment.kind == EnvironmentKind::kWarehouse) {
    if (!(scenario.environment.width_m > 0.0) ||
        !(scenario.environment.height_m > 0.0)) {
      return invalid("warehouse environment needs positive width/height, got " +
                     format_double(scenario.environment.width_m) + " x " +
                     format_double(scenario.environment.height_m));
    }
    if (scenario.environment.shelf_rows < 0) {
      return invalid("env.shelf_rows must be >= 0");
    }
  }
  if (scenario.environment.wall &&
      scenario.environment.wall_y0 == scenario.environment.wall_y1) {
    return invalid("env.wall is a zero-length segment (wall_y0 == wall_y1)");
  }
  if (scenario.legs.empty()) {
    return Status{StatusCode::kEmptyFlightPlan,
                  "scenario '" + scenario.name + "' has no flight legs"};
  }
  for (std::size_t i = 0; i < scenario.legs.size(); ++i) {
    if (scenario.legs[i].points < 2) {
      return invalid("leg " + std::to_string(i) +
                     " needs at least 2 waypoints for a SAR aperture");
    }
  }
  if (scenario.tags.empty()) {
    return Status{StatusCode::kEmptyPopulation,
                  "scenario '" + scenario.name + "' has no tags"};
  }
  for (std::size_t i = 0; i < scenario.tags.size(); ++i) {
    for (std::size_t j = i + 1; j < scenario.tags.size(); ++j) {
      if (scenario.tags[i].epc_index == scenario.tags[j].epc_index) {
        return invalid("tags " + std::to_string(i) + " and " + std::to_string(j) +
                       " share epc_index " +
                       std::to_string(scenario.tags[i].epc_index));
      }
    }
  }
  if (!(scenario.grid_resolution_m > 0.0)) {
    return invalid("localize.grid_resolution_m must be positive");
  }
  if (!(scenario.search_halfwidth_m > 0.0)) {
    return invalid("localize.search_halfwidth_m must be positive");
  }
  if (!(scenario.peak_threshold_fraction > 0.0) ||
      scenario.peak_threshold_fraction > 1.0) {
    return invalid("localize.peak_threshold_fraction must be in (0, 1]");
  }
  if (scenario.grid_margin_to_path_m < 0.0) {
    return invalid("localize.grid_margin_to_path_m must be >= 0");
  }
  if (scenario.grid_margin_to_path_m >= scenario.search_halfwidth_m) {
    return Status{StatusCode::kDegenerateGrid,
                  "grid_margin_to_path_m (" +
                      format_double(scenario.grid_margin_to_path_m) +
                      ") >= search_halfwidth_m (" +
                      format_double(scenario.search_halfwidth_m) +
                      "): the margin clips the whole search window"}
        .with_context("scenario '" + scenario.name + "'");
  }
  if (scenario.inventory.q < 0 || scenario.inventory.q > 15) {
    return invalid("inventory.q must be in [0, 15]");
  }
  if (scenario.inventory.max_rounds < 1) {
    return invalid("inventory.max_rounds must be >= 1");
  }
  if (!(scenario.system.carrier_hz > 0.0)) {
    return invalid("system.carrier_hz must be positive");
  }
  if (!(scenario.system.estimate_integration_s > 0.0)) {
    return invalid("system.estimate_integration_s must be positive");
  }
  const std::pair<const char*, double> fault_rates[] = {
      {"faults.dropout", scenario.faults.dropout},
      {"faults.phase_burst", scenario.faults.phase_burst},
      {"faults.embedded_loss", scenario.faults.embedded_loss}};
  for (const auto& [key, rate] : fault_rates) {
    if (!(rate >= 0.0) || rate > 1.0) {
      return invalid(std::string(key) + " must be a probability in [0, 1], got " +
                     format_double(rate));
    }
  }
  const std::pair<const char*, double> fault_stds[] = {
      {"faults.phase_burst_std_rad", scenario.faults.phase_burst_std_rad},
      {"faults.relay_cfo_std_rad", scenario.faults.relay_cfo_std_rad},
      {"faults.wind_jitter_std_m", scenario.faults.wind_jitter_std_m}};
  for (const auto& [key, std_dev] : fault_stds) {
    if (!(std_dev >= 0.0)) {
      return invalid(std::string(key) + " must be >= 0, got " +
                     format_double(std_dev));
    }
  }
  if (scenario.faults.max_attempts < 1) {
    return invalid("faults.max_attempts must be >= 1");
  }
  if (scenario.fleet.enabled) {
    if (scenario.fleet.n_relays < 1) {
      return invalid("fleet.n_relays must be >= 1");
    }
    if (!(scenario.fleet.per_hop_shift_hz > 0.0)) {
      return invalid("fleet.per_hop_shift_hz must be positive");
    }
    if (!(scenario.fleet.stability_isolation_db > 0.0)) {
      return invalid("fleet.stability_isolation_db must be positive");
    }
    if (!(scenario.fleet.relay_spacing_m > 0.0)) {
      return invalid("fleet.relay_spacing_m must be positive");
    }
    if (scenario.fleet.battery_j < 0.0) {
      return invalid("fleet.battery_j must be >= 0 (0 = unlimited)");
    }
    if (!(scenario.fleet.hover_power_w > 0.0) ||
        !(scenario.fleet.travel_power_w > 0.0)) {
      return invalid("fleet.hover_power_w / fleet.travel_power_w must be positive");
    }
    if (!(scenario.fleet.speed_mps > 0.0)) {
      return invalid("fleet.speed_mps must be positive");
    }
    if (scenario.fleet.dwell_s < 0.0) {
      return invalid("fleet.dwell_s must be >= 0");
    }
  } else if (!scenario.fleet.readers.empty()) {
    return invalid("fleet.reader lines need fleet.enabled = true");
  }
  return Status::ok();
}

std::string serialize(const Scenario& scenario) {
  std::string out = "# rfly scenario v1\n";
  for (const auto& field : registry()) {
    out += field.key;
    out += " = ";
    out += field.get(scenario);
    out += "\n";
  }
  for (const auto& leg : scenario.legs) {
    out += "leg = " + format_vec3(leg.start) + " " + format_vec3(leg.end) + " " +
           std::to_string(leg.points) + "\n";
  }
  for (const auto& tag : scenario.tags) {
    out += "tag = " + std::to_string(tag.epc_index) + " " +
           format_vec3(tag.position);
    if (!tag.description.empty()) out += " " + tag.description;
    out += "\n";
  }
  for (const auto& reader : scenario.fleet.readers) {
    out += "fleet.reader = " + format_vec3(reader) + "\n";
  }
  return out;
}

Expected<Scenario> parse_scenario(const std::string& text) {
  Scenario scenario;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  // Scalar keys already assigned, with the line that set them. A duplicate
  // is a parse error (the old behavior silently kept the LAST value, so a
  // stale line at the top of a file invisibly lost to an edit at the
  // bottom). `leg`/`tag`/`fleet.reader` legitimately repeat — they append.
  std::vector<std::pair<std::string, int>> assigned;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      return Status{StatusCode::kParseError,
                    "line " + std::to_string(line_no) + ": expected key = value, got '" +
                        stripped + "'"};
    }
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key != "leg" && key != "tag" && key != "fleet.reader") {
      for (const auto& [seen_key, seen_line] : assigned) {
        if (seen_key == key) {
          return Status{StatusCode::kParseError,
                        "duplicate key '" + key + "' (first set at line " +
                            std::to_string(seen_line) + ")"}
              .with_context("line " + std::to_string(line_no));
        }
      }
      assigned.emplace_back(key, line_no);
    }
    const Status status = apply_override(scenario, key, value);
    if (!status.is_ok()) {
      return Status{status.code(), status.message()}.with_context(
          "line " + std::to_string(line_no));
    }
  }
  if (Status status = validate(scenario); !status.is_ok()) {
    return status;
  }
  return scenario;
}

Expected<Scenario> load_scenario_file(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status{StatusCode::kIoError, "cannot open scenario file '" + path + "'"};
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, file)) > 0) text.append(buf, n);
  std::fclose(file);
  return parse_scenario(text).with_context("file '" + path + "'");
}

Status apply_override(Scenario& scenario, const std::string& key,
                      const std::string& value) {
  if (key == "leg") {
    if (!set_leg(scenario, value)) {
      return {StatusCode::kParseError,
              "leg wants 'x0 y0 z0 x1 y1 z1 points', got '" + value + "'"};
    }
    return Status::ok();
  }
  if (key == "tag") {
    if (!set_tag(scenario, value)) {
      return {StatusCode::kParseError,
              "tag wants 'epc_index x y z [description]', got '" + value + "'"};
    }
    return Status::ok();
  }
  if (key == "fleet.reader") {
    if (!set_fleet_reader(scenario, value)) {
      return {StatusCode::kParseError,
              "fleet.reader wants 'x y z', got '" + value + "'"};
    }
    return Status::ok();
  }
  const FieldDef* field = find_field(key);
  if (field == nullptr) {
    return {StatusCode::kNotFound, "unknown scenario key '" + key + "'"};
  }
  if (!field->set(scenario, value)) {
    return {StatusCode::kParseError,
            "bad value '" + value + "' for key '" + key + "'"};
  }
  return Status::ok();
}

namespace {

Scenario preset_building() {
  Scenario s;
  s.name = "building";
  s.seed = 1;
  // The paper's testbed: a 30 x 40 m research-building floor (Section 7.2),
  // same constants as core::building_environment().
  s.environment = {EnvironmentKind::kWarehouse, 40.0, 30.0, 0, false, 0.0, -10.0, 10.0};
  s.reader_position = {0.5, 0.5, 1.0};
  s.legs.push_back({{4.0, 12.0, 1.2}, {24.0, 12.3, 1.2}, 120});
  s.tags.push_back({0, {8.0, 10.0, 0.0}, "alpha"});
  s.tags.push_back({1, {14.0, 10.0, 0.0}, "beta"});
  s.tags.push_back({2, {20.0, 10.0, 0.0}, "gamma"});
  return s;
}

Scenario preset_warehouse() {
  Scenario s;
  s.name = "warehouse";
  s.seed = 23;
  // The warehouse-scan deployment: 40 x 30 m, two steel shelf rows, a
  // ceiling-mounted reader high enough to clear the shelf tops, and nine
  // tagged items along the aisles (examples/warehouse_scan.cpp is a thin
  // shell over this preset).
  s.environment = {EnvironmentKind::kWarehouse, 40.0, 30.0, 2, false, 0.0, -10.0, 10.0};
  s.reader_position = {1.0, 15.0, 4.0};
  for (double aisle_y : {5.0, 15.0, 25.0}) {
    s.legs.push_back({{1.0, aisle_y + 1.6, 1.2}, {39.0, aisle_y + 1.8, 1.2}, 140});
  }
  const char* names[] = {"pallet of drills",   "box of jackets", "solvent drums",
                         "printer cartridges", "bike frames",    "copper spools",
                         "server chassis",     "ceramic tiles",  "seed bags"};
  Rng placement(11);
  for (std::uint32_t i = 0; i < 9; ++i) {
    const double aisle_y = 5.0 + 10.0 * static_cast<double>(i % 3);
    const double x = 6.0 + 8.0 * static_cast<double>(i / 3) + placement.uniform(-1.0, 1.0);
    const double y = aisle_y + placement.uniform(-1.0, 1.0);
    s.tags.push_back({i, {x, y, 0.0}, names[i]});
  }
  return s;
}

Scenario preset_through_wall() {
  Scenario s;
  s.name = "through_wall";
  s.seed = 7;
  // The paper's non-line-of-sight story: the reader is separated from the
  // scanned aisle by a concrete wall; only the relay-borne link reaches the
  // tags (Fig. 11's NLoS series as a scan mission).
  s.environment = {EnvironmentKind::kEmpty, 0.0, 0.0, 0, true, 6.0, -10.0, 10.0};
  s.reader_position = {0.0, 0.0, 1.0};
  s.legs.push_back({{9.5, 2.0, 1.0}, {15.5, 2.2, 1.0}, 80});
  s.tags.push_back({0, {11.0, 0.0, 0.0}, "crate A"});
  s.tags.push_back({1, {12.5, 0.0, 0.0}, "crate B"});
  s.tags.push_back({2, {14.0, 0.0, 0.0}, "crate C"});
  return s;
}

Scenario preset_fleet_warehouse() {
  Scenario s;
  s.name = "fleet_warehouse";
  s.seed = 29;
  // The warehouse scanned by a relay fleet: two readers on opposite walls,
  // each rooting a 2-relay daisy chain (one static hover relay bridging to
  // the flying terminal relay), battery-budgeted so the planner matters.
  // Coarser grid than the single-relay warehouse preset: this preset rides
  // in the tier-1 smoke run, so it stays cheap.
  s.environment = {EnvironmentKind::kWarehouse, 40.0, 30.0, 2, false, 0.0, -10.0, 10.0};
  s.reader_position = {1.0, 15.0, 4.0};
  s.grid_resolution_m = 0.05;
  s.search_halfwidth_m = 2.0;
  for (double aisle_y : {5.0, 15.0, 25.0}) {
    s.legs.push_back({{6.0, aisle_y + 1.6, 1.2}, {34.0, aisle_y + 1.8, 1.2}, 90});
  }
  const char* names[] = {"pallet of drills",   "box of jackets", "solvent drums",
                         "printer cartridges", "bike frames",    "copper spools",
                         "server chassis",     "ceramic tiles",  "seed bags"};
  Rng placement(13);
  for (std::uint32_t i = 0; i < 9; ++i) {
    const double aisle_y = 5.0 + 10.0 * static_cast<double>(i % 3);
    const double x = 9.0 + 9.0 * static_cast<double>(i / 3) + placement.uniform(-1.0, 1.0);
    const double y = aisle_y + placement.uniform(-1.0, 1.0);
    s.tags.push_back({i, {x, y, 0.0}, names[i]});
  }
  s.fleet.enabled = true;
  s.fleet.n_relays = 2;
  s.fleet.relay_spacing_m = 12.0;
  s.fleet.battery_j = 20000.0;
  s.fleet.readers.push_back({1.0, 10.0, 4.0});
  s.fleet.readers.push_back({39.0, 20.0, 4.0});
  return s;
}

}  // namespace

Expected<Scenario> preset(const std::string& name) {
  if (name == "building") return preset_building();
  if (name == "warehouse") return preset_warehouse();
  if (name == "through_wall") return preset_through_wall();
  if (name == "fleet_warehouse") return preset_fleet_warehouse();
  std::string known;
  for (const auto& p : preset_names()) {
    if (!known.empty()) known += ", ";
    known += p;
  }
  return Status{StatusCode::kNotFound,
                "unknown preset '" + name + "' (known: " + known + ")"};
}

std::vector<std::string> preset_names() {
  return {"building", "warehouse", "through_wall", "fleet_warehouse"};
}

core::ScanMissionConfig mission_config(const Scenario& scenario) {
  core::ScanMissionConfig config;
  config.system = scenario.system;
  config.flight = scenario.flight;
  config.tracking = scenario.tracking;
  config.inventory = scenario.inventory;
  config.search_halfwidth_m = scenario.search_halfwidth_m;
  config.grid_resolution_m = scenario.grid_resolution_m;
  config.peak_threshold_fraction = scenario.peak_threshold_fraction;
  config.grid_margin_to_path_m = scenario.grid_margin_to_path_m;
  config.tags_below_path = scenario.tags_below_path;
  config.localize_threads = scenario.localize_threads;
  config.sar_kernel = scenario.sar_kernel;
  config.sar_search = scenario.sar_search;
  config.measure_plane = scenario.measure_plane;
  return config;
}

std::vector<Vec3> flight_plan(const Scenario& scenario) {
  std::vector<Vec3> plan;
  for (const auto& leg : scenario.legs) {
    const auto row = drone::linear_trajectory(leg.start, leg.end, leg.points);
    plan.insert(plan.end(), row.begin(), row.end());
  }
  return plan;
}

std::vector<core::TagPlacement> tag_placements(const Scenario& scenario) {
  std::vector<core::TagPlacement> tags;
  tags.reserve(scenario.tags.size());
  for (const auto& spec : scenario.tags) {
    core::TagPlacement placement;
    placement.config = scenario.system.tag;
    placement.config.epc = core::make_epc(spec.epc_index);
    placement.position = spec.position;
    tags.push_back(placement);
  }
  return tags;
}

core::InventoryDatabase database(const Scenario& scenario) {
  core::InventoryDatabase db;
  for (const auto& spec : scenario.tags) {
    if (!spec.description.empty()) {
      db.add(core::make_epc(spec.epc_index), spec.description);
    }
  }
  return db;
}

}  // namespace rfly::sim
