// Declarative mission descriptions: a Scenario is a complete experiment —
// system, environment, reader placement, flight plan, tag population, and
// localizer knobs — as a first-class, validated, serializable value. It
// round-trips through a line-oriented `key = value` text format, so a sweep
// that used to mean editing N bench binaries is now a scenario file plus
// `bench/scenario_runner --set key=value` overrides. Named presets replace
// the config constants that used to be copy-pasted across benches, examples,
// and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/scan_mission.h"
#include "sim/faults.h"
#include "sim/fleet_plan.h"

namespace rfly::sim {

using channel::Vec3;

/// How the obstacle set is built. kEmpty is free space; kWarehouse is the
/// paper's rectangular facility via channel::warehouse_environment.
enum class EnvironmentKind : std::uint8_t { kEmpty, kWarehouse };

struct EnvironmentSpec {
  EnvironmentKind kind = EnvironmentKind::kWarehouse;
  double width_m = 40.0;
  double height_m = 30.0;
  int shelf_rows = 0;
  /// Optional extra concrete wall (through-wall scenarios): a segment at
  /// x = wall_x spanning [wall_y0, wall_y1].
  bool wall = false;
  double wall_x = 0.0;
  double wall_y0 = -10.0;
  double wall_y1 = 10.0;

  channel::Environment build() const;
};

/// One straight flight leg sampled at `points` waypoints (inclusive ends).
struct FlightLeg {
  Vec3 start{};
  Vec3 end{};
  std::size_t points = 50;
};

/// One tag of the population: deterministic EPC from `epc_index`, placed at
/// `position`, with an optional item-database description.
struct TagSpec {
  std::uint32_t epc_index = 0;
  Vec3 position{};
  std::string description;
};

/// Fleet extension (`fleet.*` keys): daisy-chained relays and multiple
/// readers. Each reader owns a chain of `n_relays` relays — static hover
/// relays spaced `relay_spacing_m` apart toward the chain's aperture, plus
/// the flying terminal relay — with a per-hop frequency plan stepping by
/// `per_hop_shift_hz`. Legs and tags are partitioned to the nearest chain;
/// the energy-aware planner (sim/fleet_plan.h) selects which planned
/// waypoints each terminal relay dwells at under `battery_j`. Disabled
/// (the default) leaves the scenario a plain single-relay mission.
struct FleetSpec {
  bool enabled = false;                 // fleet.enabled
  int n_relays = 1;                     // fleet.n_relays (per chain, >= 1)
  double per_hop_shift_hz = 1e6;        // fleet.per_hop_shift_hz
  double stability_isolation_db = 64.0; // fleet.stability_isolation_db (Eq. 3)
  double relay_spacing_m = 20.0;        // fleet.relay_spacing_m
  FleetPlanner planner = FleetPlanner::kGreedy;  // fleet.planner
  double battery_j = 0.0;               // fleet.battery_j (0 = unlimited)
  double hover_power_w = 150.0;         // fleet.hover_power_w
  double travel_power_w = 200.0;        // fleet.travel_power_w
  double speed_mps = 2.0;               // fleet.speed_mps
  double dwell_s = 0.05;                // fleet.dwell_s
  /// Reader positions, one chain each (repeated `fleet.reader = x y z`
  /// lines append, like `leg`/`tag`). Empty = one chain rooted at the
  /// scenario's `reader_position`.
  std::vector<Vec3> readers;
};

struct Scenario {
  std::string name = "unnamed";
  std::uint64_t seed = 1;

  core::SystemConfig system{};
  EnvironmentSpec environment{};
  Vec3 reader_position{0.0, 0.0, 1.0};
  drone::FlightConfig flight{};
  drone::TrackingConfig tracking = drone::optitrack_tracking();
  core::InventoryRoundConfig inventory{};

  std::vector<FlightLeg> legs;
  std::vector<TagSpec> tags;

  // Localizer knobs (mirror core::ScanMissionConfig).
  double search_halfwidth_m = 3.0;
  double grid_resolution_m = 0.02;
  double peak_threshold_fraction = 0.55;
  double grid_margin_to_path_m = 0.3;
  bool tags_below_path = true;
  unsigned localize_threads = 0;
  localize::SarKernel sar_kernel = localize::SarKernel::kExact;
  localize::SarSearch sar_search = localize::SarSearch::kExact;
  /// Measurement-synthesis plane (`measure.plane = off|exact|fast|auto`);
  /// auto resolves to exact, which is bit-identical to off.
  core::MeasurePlane measure_plane = core::MeasurePlane::kAuto;

  /// Fault model (`faults.*` keys). All rates default to zero: a scenario
  /// without faults keys runs bit-identically to one predating the layer.
  FaultConfig faults{};

  /// Fleet mode (`fleet.*` keys). Disabled by default: a scenario without
  /// fleet keys runs the plain single-relay pipeline, bit-identically to
  /// one predating the subsystem.
  FleetSpec fleet{};
};

/// Reject inconsistent scenarios with an actionable message: empty flight
/// plan (kEmptyFlightPlan), empty tag population (kEmptyPopulation), a
/// margin that clips the whole search window (kDegenerateGrid), duplicate
/// EPC indices, non-positive dimensions/resolutions (kInvalidArgument).
Status validate(const Scenario& scenario);

/// Line-oriented `key = value` text form. Doubles print with enough digits
/// to round-trip exactly; parse(serialize(s)) reproduces s bit-for-bit.
std::string serialize(const Scenario& scenario);

/// Parse scenario text. Unknown keys, malformed values, wrong arity, and
/// duplicate scalar keys (which used to silently keep the last value) are
/// kParseError with the line number in context; a duplicate also names the
/// line that first set the key. The result is validated.
Expected<Scenario> parse_scenario(const std::string& text);

/// Load + parse + validate a scenario file (kIoError if unreadable).
Expected<Scenario> load_scenario_file(const std::string& path);

/// Apply one `key=value` override (same keys as the serialized form;
/// `leg = ...`, `tag = ...`, and `fleet.reader = ...` append). Unknown
/// key -> kNotFound.
Status apply_override(Scenario& scenario, const std::string& key,
                      const std::string& value);

/// Named presets: "building" (the paper's 30x40 m research floor, one aisle
/// of tags), "warehouse" (the warehouse-scan deployment: 2 steel shelf
/// rows, 9 tagged items, 3-aisle lawnmower plan), "through_wall" (reader
/// separated from the scanned aisle by a concrete wall), "fleet_warehouse"
/// (the warehouse scanned by two 2-relay daisy chains under a battery
/// budget — the fleet subsystem's end-to-end exemplar).
Expected<Scenario> preset(const std::string& name);
std::vector<std::string> preset_names();

// --- Materialization: turn the declarative value into mission inputs. ---

core::ScanMissionConfig mission_config(const Scenario& scenario);
std::vector<Vec3> flight_plan(const Scenario& scenario);
std::vector<core::TagPlacement> tag_placements(const Scenario& scenario);
core::InventoryDatabase database(const Scenario& scenario);

}  // namespace rfly::sim
