// Energy-aware trajectory planning for fleet missions: given the planned
// waypoint lists of a chain's flight legs and a battery budget, select the
// subset of waypoints the terminal relay actually dwells at. The greedy
// planner maximizes aperture information per joule; the uniform baseline
// dwells at every planned waypoint in order until the battery dies.
//
// Aperture information model (paper Section 5.2 + the SAR sampling
// criterion): accuracy grows with aperture extent, and samples closer than
// half a wavelength are redundant — so a selected waypoint contributes
// min(gap to the previous selection along the path, lambda/2). Planned
// waypoints denser than lambda/2 are therefore free information for the
// greedy planner: it skips the redundant dwells and spends the saved joules
// extending the aperture, which is exactly where it beats the baseline.
//
// Everything here is pure arithmetic on the inputs — no RNG, no global
// state — so fleet plans are seed-, thread-count-, and batch-mode-
// invariant by construction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "channel/geometry.h"
#include "drone/energy.h"

namespace rfly::sim {

enum class FleetPlanner : std::uint8_t {
  kGreedy,   // information-per-joule waypoint selection
  kUniform,  // dwell at every planned waypoint until the budget dies
};

/// Stable lower-case token ("greedy" / "uniform"), used by fleet.planner.
const char* fleet_planner_name(FleetPlanner planner);
bool parse_fleet_planner(const std::string& text, FleetPlanner& out);

struct FleetPlanConfig {
  FleetPlanner planner = FleetPlanner::kGreedy;
  drone::EnergyModel energy{};
  /// Battery budget [J]; 0 = unlimited (the route is never cut short —
  /// though the greedy planner still skips redundant sub-cap dwells).
  double battery_j = 0.0;
  /// Wind 1-sigma from the fault layer (faults.wind_jitter_std_m). Nonzero
  /// wind inflates both powers via drone::with_wind; the planner first
  /// plans for calm air, then replans each leg whose selection the wind
  /// penalty changes (the replanned selection is what flies).
  double wind_sigma_m = 0.0;
  /// Redundancy cap: samples closer than this along the path add no
  /// aperture information (default lambda/2 at 915 MHz + 1 MHz shift).
  double sample_cap_m = 0.1637;
};

/// One leg's planned waypoints (ordered along the leg).
struct FleetPlanLeg {
  std::vector<channel::Vec3> waypoints;
};

struct FleetPlan {
  /// Selected waypoint indices into the concatenation of the legs'
  /// waypoint lists, strictly increasing (flight order).
  std::vector<std::size_t> selected;
  /// Selected waypoint positions, in the same order.
  std::vector<channel::Vec3> route;
  double energy_spent_j = 0.0;
  double battery_j = 0.0;  // echoed budget (0 = unlimited)
  /// Aperture information of the selection / of the full plan, in meters
  /// of well-sampled aperture (sum of capped gaps).
  double covered_info_m = 0.0;
  double planned_info_m = 0.0;
  /// covered/planned (1 when the budget covers the whole plan).
  double coverage = 1.0;
  /// Legs whose selection the wind penalty changed (0 in calm air).
  std::size_t replans = 0;
  /// True when the budget ran out before the plan was covered.
  bool exhausted = false;
};

/// Plan a chain's route. Energy accounting: travel along the planned
/// polyline from the first selected waypoint to the last (skipped waypoints
/// still cost their path segments — the drone flies past them), plus one
/// dwell per selection; the ferry from the launch point to the first
/// waypoint is out of scope. Deterministic; ties break toward the earlier
/// waypoint.
FleetPlan plan_fleet_route(const std::vector<FleetPlanLeg>& legs,
                           const FleetPlanConfig& config);

}  // namespace rfly::sim
