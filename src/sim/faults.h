// Declarative, seed-deterministic fault model for the mission pipeline.
// The paper's evaluation (Section 7.3) survives drone sway, wind, dropped
// reads, and residual relay phase error; this layer injects those
// imperfections at the pipeline boundaries so missions can be stressed
// reproducibly: trajectory jitter after the fly stage, measurement dropout
// / embedded-tag read loss / phase-noise bursts / residual relay CFO on
// the collected aperture before disentanglement.
//
// Determinism contract: the injector draws from its own Rng stream
// (stream_seed(mission_seed, kFaultStream)), never from the shared mission
// Rng, and every sub-fault skips its draw entirely at rate zero — so a
// FaultConfig with all rates zero is provably free: the mission consumes
// exactly the same random sequence and produces bit-identical output.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "drone/flight.h"
#include "localize/measurement.h"

namespace rfly::sim {

/// Fault rates and retry policy. All rates default to zero (no faults);
/// `faults.*` keys on a Scenario round-trip through the serializer.
struct FaultConfig {
  /// Per-position probability that the reader fails to obtain a channel
  /// estimate even though the physics would allow one (lost read).
  double dropout = 0.0;
  /// Per-position probability of a phase-noise burst on the target channel,
  /// and the burst's 1-sigma size.
  double phase_burst = 0.0;
  double phase_burst_std_rad = 0.8;
  /// Residual relay CFO after the mirrored architecture's cancellation:
  /// 1-sigma of a per-mission phase-ramp slope [rad per position] applied
  /// to the target channel only (Eq. 10 cancels whatever is common to the
  /// target and embedded channels).
  double relay_cfo_std_rad = 0.0;
  /// Wind model: extra per-axis 1-sigma perturbation of the drone's ACTUAL
  /// position that the tracking system does not see, widening the
  /// reported-vs-actual gap the SAR equations suffer.
  double wind_jitter_std_m = 0.0;
  /// Per-position probability that the relay-embedded tag's read is lost,
  /// which breaks disentanglement for that position (Eq. 10 has no
  /// reference to divide by) — the measurement is unusable.
  double embedded_loss = 0.0;
  /// Bounded attempts for fault-afflicted stages: when an affliction leaves
  /// too small an aperture (or localization fails on it), the stage re-runs
  /// with a fresh fault draw, up to this many attempts total.
  int max_attempts = 3;

  /// True when any fault can fire. The pipeline skips the injector entirely
  /// when false, so the disabled layer costs no draws and no work.
  bool enabled() const {
    return dropout > 0.0 || phase_burst > 0.0 || relay_cfo_std_rad > 0.0 ||
           wind_jitter_std_m > 0.0 || embedded_loss > 0.0;
  }
};

/// Injection tallies for one mission, surfaced on MissionRun and mirrored
/// into obs counters (`faults.*`).
struct FaultStats {
  std::uint64_t dropouts = 0;         // measurements removed by dropout
  std::uint64_t embedded_losses = 0;  // measurements removed by embedded loss
  std::uint64_t phase_bursts = 0;     // measurements hit by a burst
  std::uint64_t cfo_measurements = 0; // measurements carrying the CFO ramp
  std::uint64_t wind_points = 0;      // flight points perturbed by wind
  std::uint64_t retries = 0;          // extra stage attempts beyond the first

  /// Discrete disruptions: events that removed or corrupted a measurement,
  /// or forced a retry. Continuous impairments (wind, CFO) perturb every
  /// sample alike and do not count — a mission is DEGRADED when this is
  /// nonzero, not merely noisier.
  std::uint64_t disruptions() const {
    return dropouts + embedded_losses + phase_bursts + retries;
  }
};

/// Per-mission fault source. Owns an independent Rng stream derived from
/// the mission seed, so (a) two missions with the same seed inject the
/// same faults at any thread count, and (b) the shared mission Rng's draw
/// sequence is untouched whether faults are on or off.
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, std::uint64_t mission_seed);

  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// Fly-stage boundary: wind perturbs where the drone actually was; the
  /// tracking report (what SAR is given) keeps believing the plan. No-op
  /// at wind_jitter_std_m == 0.
  void perturb_flight(std::vector<drone::FlownPoint>& flight);

  /// Measure-stage boundary: apply dropout / embedded loss / bursts / CFO
  /// to a freshly collected clean aperture and return the survivors. Each
  /// call draws a fresh fault pattern — calling again IS the retry. Draw
  /// order per position (dropout, embedded loss, burst) is part of the
  /// determinism contract; rate-zero sub-faults consume no draws.
  localize::MeasurementSet afflict(const localize::MeasurementSet& clean);

  /// Record one retry of a fault-afflicted stage.
  void count_retry() { ++stats_.retries; }

 private:
  FaultConfig config_;
  Rng rng_;
  /// Per-mission residual CFO ramp slope [rad/position], drawn once.
  double cfo_slope_rad_ = 0.0;
  FaultStats stats_;
};

}  // namespace rfly::sim
