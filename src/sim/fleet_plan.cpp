#include "sim/fleet_plan.h"

#include <algorithm>

namespace rfly::sim {

namespace {

using channel::Vec3;
using drone::EnergyModel;

/// Cumulative path distance along a leg's planned waypoints.
std::vector<double> path_distances(const std::vector<Vec3>& wps) {
  std::vector<double> cum(wps.size(), 0.0);
  for (std::size_t i = 1; i < wps.size(); ++i) {
    cum[i] = cum[i - 1] + wps[i - 1].distance_to(wps[i]);
  }
  return cum;
}

struct LegSelection {
  std::vector<std::size_t> indices;  // local waypoint indices, increasing
  double energy_j = 0.0;             // entry transit + path travel + dwells
  double info_m = 0.0;               // sum of capped gaps (first gains cap)
  bool exhausted = false;
};

/// Select one leg's dwell waypoints under the remaining budget. Entry cost
/// is the transit from `from` (the previous leg's last dwell; nullptr for
/// the first leg, whose ferry-in is out of scope) to the leg's first
/// waypoint. Budget 0 = unlimited.
LegSelection select_leg(const std::vector<Vec3>& wps, const EnergyModel& model,
                        FleetPlanner planner, double cap, bool unlimited,
                        double budget, const Vec3* from) {
  LegSelection sel;
  if (wps.empty()) return sel;
  const std::vector<double> cum = path_distances(wps);
  const double dwell = drone::dwell_energy_j(model);
  const auto affordable = [&](double cost) {
    return unlimited || sel.energy_j + cost <= budget;
  };

  // Enter the leg at its first waypoint (a fresh aperture sample is worth
  // the full cap, and every later entry point costs strictly more transit).
  const double entry =
      (from != nullptr ? drone::travel_energy_j(model, *from, wps.front()) : 0.0) +
      dwell;
  if (!affordable(entry)) {
    sel.exhausted = true;
    return sel;
  }
  sel.energy_j += entry;
  sel.info_m += cap;
  sel.indices.push_back(0);

  std::size_t last = 0;
  while (last + 1 < wps.size()) {
    std::size_t pick = wps.size();  // none
    if (planner == FleetPlanner::kUniform) {
      // Baseline: the next planned waypoint, always.
      const double cost =
          drone::travel_energy_j(model, cum[last + 1] - cum[last]) + dwell;
      if (affordable(cost)) pick = last + 1;
    } else {
      // Greedy: maximize marginal aperture information per joule. The gain
      // min(gap, cap) stops growing at the cap while the cost keeps rising,
      // so the ratio is non-increasing past the first gap >= cap — scan up
      // to (and including) that waypoint and keep the best affordable one.
      double best_ratio = -1.0;
      for (std::size_t j = last + 1; j < wps.size(); ++j) {
        const double gap = cum[j] - cum[last];
        const double cost = drone::travel_energy_j(model, gap) + dwell;
        if (affordable(cost)) {
          const double ratio = std::min(gap, cap) / cost;
          if (ratio > best_ratio) {
            best_ratio = ratio;
            pick = j;
          }
        }
        if (gap >= cap) break;
      }
    }
    if (pick == wps.size()) {
      // Nothing affordable ahead: either the budget died or (greedy, no
      // budget pressure) the loop cannot happen — affordability always
      // holds when unlimited, so this is exhaustion.
      sel.exhausted = true;
      break;
    }
    const double gap = cum[pick] - cum[last];
    sel.energy_j += drone::travel_energy_j(model, gap) + dwell;
    sel.info_m += std::min(gap, cap);
    sel.indices.push_back(pick);
    last = pick;
  }
  return sel;
}

/// Full multi-leg pass with one energy model. Budget threads through the
/// legs sequentially; a leg that exhausts it stops the route.
std::vector<LegSelection> select_all(const std::vector<FleetPlanLeg>& legs,
                                     const EnergyModel& model,
                                     FleetPlanner planner, double cap,
                                     double budget) {
  std::vector<LegSelection> out;
  out.reserve(legs.size());
  const bool unlimited = budget <= 0.0;
  double spent = 0.0;
  const Vec3* from = nullptr;
  bool dead = false;
  for (const auto& leg : legs) {
    if (dead || leg.waypoints.empty()) {
      LegSelection empty;
      empty.exhausted = dead;
      out.push_back(std::move(empty));
      continue;
    }
    LegSelection sel = select_leg(leg.waypoints, model, planner, cap, unlimited,
                                  unlimited ? 0.0 : budget - spent, from);
    spent += sel.energy_j;
    if (!sel.indices.empty()) {
      from = &leg.waypoints[sel.indices.back()];
    }
    if (sel.exhausted) dead = true;
    out.push_back(std::move(sel));
  }
  return out;
}

double planned_info(const std::vector<FleetPlanLeg>& legs, double cap) {
  double info = 0.0;
  for (const auto& leg : legs) {
    if (leg.waypoints.empty()) continue;
    const std::vector<double> cum = path_distances(leg.waypoints);
    info += cap;  // first waypoint: a fresh sample
    for (std::size_t i = 1; i < leg.waypoints.size(); ++i) {
      info += std::min(cum[i] - cum[i - 1], cap);
    }
  }
  return info;
}

}  // namespace

const char* fleet_planner_name(FleetPlanner planner) {
  switch (planner) {
    case FleetPlanner::kGreedy:
      return "greedy";
    case FleetPlanner::kUniform:
      return "uniform";
  }
  return "greedy";
}

bool parse_fleet_planner(const std::string& text, FleetPlanner& out) {
  if (text == "greedy") return out = FleetPlanner::kGreedy, true;
  if (text == "uniform") return out = FleetPlanner::kUniform, true;
  return false;
}

FleetPlan plan_fleet_route(const std::vector<FleetPlanLeg>& legs,
                           const FleetPlanConfig& config) {
  FleetPlan plan;
  plan.battery_j = config.battery_j;
  plan.planned_info_m = planned_info(legs, config.sample_cap_m);

  std::vector<LegSelection> chosen =
      select_all(legs, config.energy, config.planner, config.sample_cap_m,
                 config.battery_j);
  if (config.wind_sigma_m > 0.0) {
    // The fault layer injects wind: replan with the gust-inflated energy
    // model. Legs whose selection changes are the replans; what flies is
    // the wind-aware route.
    const EnergyModel windy = drone::with_wind(config.energy, config.wind_sigma_m);
    std::vector<LegSelection> replanned =
        select_all(legs, windy, config.planner, config.sample_cap_m,
                   config.battery_j);
    for (std::size_t l = 0; l < legs.size(); ++l) {
      if (replanned[l].indices != chosen[l].indices) ++plan.replans;
    }
    chosen = std::move(replanned);
  }

  std::size_t base = 0;
  for (std::size_t l = 0; l < legs.size(); ++l) {
    const LegSelection& sel = chosen[l];
    plan.energy_spent_j += sel.energy_j;
    plan.covered_info_m += sel.info_m;
    if (sel.exhausted) plan.exhausted = true;
    for (std::size_t local : sel.indices) {
      plan.selected.push_back(base + local);
      plan.route.push_back(legs[l].waypoints[local]);
    }
    base += legs[l].waypoints.size();
  }
  plan.coverage = plan.planned_info_m > 0.0
                      ? std::min(1.0, plan.covered_info_m / plan.planned_info_m)
                      : 1.0;
  return plan;
}

}  // namespace rfly::sim
