// Batch runner: execute many (scenario, seed) jobs concurrently on the
// shared deterministic thread pool. Outer parallelism composes with the
// inner SAR parallelism — a worker already inside parallel_for runs nested
// ranges serially — so a sweep saturates the machine whether it is one
// scenario with a huge grid or a hundred small seeds. Results land at the
// job's own index, so the output is identical at any thread count.
//
// Two execution modes (see DESIGN.md "Batched execution & memory plane"):
//
//   kPerMission — every job runs its whole pipeline independently (the
//     legacy shape). Scenario parsing/validation is still hoisted: each
//     distinct scenario text is validated and materialized once per batch,
//     not once per job.
//
//   kBatched (default) — additionally, fault-free jobs defer their localize
//     stages; the runner dedups identical (measurement set, config) tasks,
//     groups tasks that share a trajectory/grid/frequency plane, and sweeps
//     each group's SAR heatmaps in one blocked multi-tag pass over
//     arena-backed planes, with trajectory/grid buffers served from the
//     digest-keyed GeometryCache. Behaviorally invisible: every BatchResult
//     is bit-identical to the per-mission mode at any thread count,
//     warm or cold cache (pinned by tests/test_batch_parity.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "localize/geometry_cache.h"
#include "sim/pipeline.h"
#include "sim/scenario.h"

namespace rfly::sim {

struct BatchJob {
  Scenario scenario;
  /// Engine seed the mission runs with. Hand-built jobs pick any value;
  /// run_seed_sweep derives decorrelated per-trial seeds (see below).
  std::uint64_t seed = 1;
};

/// Outcome of one job. `status` is the mission-level outcome; `run` holds
/// the report and stage trace when it is OK.
struct BatchResult {
  std::string scenario_name;
  std::uint64_t seed = 0;
  Status status = Status::ok();
  MissionRun run;
};

enum class BatchMode : std::uint8_t {
  kPerMission,  // independent pipelines, no cross-mission sharing
  kBatched,     // shared measurement plane + geometry cache + arena
};

/// Stable lower-case token ("per-mission" / "batched"), used by --batch.
const char* batch_mode_name(BatchMode mode);
bool parse_batch_mode(const std::string& text, BatchMode& out);

struct BatchConfig {
  /// Jobs in flight at once: 0 = hardware concurrency, 1 = serial.
  /// (First member — callers aggregate-initialize as BatchConfig{threads}.)
  unsigned threads = 0;
  BatchMode mode = BatchMode::kBatched;
  /// Retention bound applied to the process-wide GeometryCache for this
  /// run (entries per buffer kind). 0 disables retention entirely.
  std::size_t cache_capacity = localize::GeometryCache::kDefaultCapacity;
};

/// Instrumentation from one batch run — the sharing the batched mode found
/// and what it cost. Purely observational: none of it feeds back into
/// results.
struct BatchRunInfo {
  double wall_seconds = 0.0;
  /// GeometryCache hit/miss deltas over this run (zero in kPerMission).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// ForwardPlaneCache hit/miss deltas over this run. Unlike the geometry
  /// figures these are populated in BOTH modes: the pipeline's measure
  /// stage consults the plane cache per mission too (the batched mode only
  /// adds the retention bound and the cross-mission sharing).
  std::uint64_t forward_plane_hits = 0;
  std::uint64_t forward_plane_misses = 0;
  /// Peak bytes the shared measurement plane's arena held at once.
  std::size_t arena_high_water_bytes = 0;
  std::size_t scenario_groups = 0;  // distinct scenario texts (validated once each)
  std::size_t plane_groups = 0;     // multi-tag sweeps launched
  std::size_t deferred_tasks = 0;   // localize stages hoisted out of missions
  std::size_t distinct_tasks = 0;   // after content dedup (= sweeps' total slots)
};

/// Run every job; never throws away work — a failed job is a BatchResult
/// with its Status, in the same position as its job. `info`, when non-null,
/// receives the run's sharing/throughput instrumentation.
std::vector<BatchResult> run_batch(const std::vector<BatchJob>& jobs,
                                   const BatchConfig& config = {},
                                   BatchRunInfo* info = nullptr);

/// Convenience: one scenario across `count` trials. Trial i runs with the
/// engine seed stream_seed(first_seed, i) — a splitmix64 hash of
/// (first_seed, trial_index) — NOT first_seed + i: the Rng is not
/// thread-safe and trials must not share stochastic state, but raw
/// adjacent seeds do exactly that across sweeps (sweep 40's trial 1 and
/// sweep 41's trial 0 were the same mission, and both collided with the
/// pipeline's `seed + 100 + i` tag streams). The hashed streams are
/// independent, so batch output is a pure function of (first_seed, i):
/// thread-count- and order-invariant, pinned bit-for-bit by test_batch.
/// The scenario is validated and materialized once for the whole sweep.
std::vector<BatchResult> run_seed_sweep(const Scenario& scenario,
                                        std::uint64_t first_seed,
                                        std::size_t count,
                                        const BatchConfig& config = {},
                                        BatchRunInfo* info = nullptr);

/// Fraction of jobs whose mission succeeded, and mean localized count over
/// successful jobs (0 when none) — the headline numbers a sweep prints.
struct BatchSummary {
  std::size_t jobs = 0;
  std::size_t failed = 0;
  /// Successful missions whose health came back kDegraded (fault injection
  /// disrupted them but they completed). Disjoint from `failed`.
  std::size_t degraded = 0;
  double mean_discovered = 0.0;
  double mean_localized = 0.0;
  /// Mean aperture coverage over successful jobs (1 when faults are off).
  double mean_coverage = 0.0;
  /// Sum of *successful* jobs' wall clock. A failed job produces no
  /// MissionRun (Expected carries only the Status), so there is no per-job
  /// time to include — callers printing this figure must label it
  /// "successful jobs", not "all jobs".
  double total_seconds = 0.0;
  /// Batch throughput and sharing figures — populated by the BatchRunInfo
  /// overload, zero otherwise.
  double missions_per_second = 0.0;  // jobs / batch wall clock
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t arena_high_water_bytes = 0;
};

BatchSummary summarize(const std::vector<BatchResult>& results);
BatchSummary summarize(const std::vector<BatchResult>& results,
                       const BatchRunInfo& info);

}  // namespace rfly::sim
