// Batch runner: execute many (scenario, seed) jobs concurrently on the
// shared deterministic thread pool. Outer parallelism composes with the
// inner SAR parallelism — a worker already inside parallel_for runs nested
// ranges serially — so a sweep saturates the machine whether it is one
// scenario with a huge grid or a hundred small seeds. Results land at the
// job's own index, so the output is identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/pipeline.h"
#include "sim/scenario.h"

namespace rfly::sim {

struct BatchJob {
  Scenario scenario;
  /// Engine seed the mission runs with. Hand-built jobs pick any value;
  /// run_seed_sweep derives decorrelated per-trial seeds (see below).
  std::uint64_t seed = 1;
};

/// Outcome of one job. `status` is the mission-level outcome; `run` holds
/// the report and stage trace when it is OK.
struct BatchResult {
  std::string scenario_name;
  std::uint64_t seed = 0;
  Status status = Status::ok();
  MissionRun run;
};

struct BatchConfig {
  /// Jobs in flight at once: 0 = hardware concurrency, 1 = serial.
  unsigned threads = 0;
};

/// Run every job; never throws away work — a failed job is a BatchResult
/// with its Status, in the same position as its job.
std::vector<BatchResult> run_batch(const std::vector<BatchJob>& jobs,
                                   const BatchConfig& config = {});

/// Convenience: one scenario across `count` trials. Trial i runs with the
/// engine seed stream_seed(first_seed, i) — a splitmix64 hash of
/// (first_seed, trial_index) — NOT first_seed + i: the Rng is not
/// thread-safe and trials must not share stochastic state, but raw
/// adjacent seeds do exactly that across sweeps (sweep 40's trial 1 and
/// sweep 41's trial 0 were the same mission, and both collided with the
/// pipeline's `seed + 100 + i` tag streams). The hashed streams are
/// independent, so batch output is a pure function of (first_seed, i):
/// thread-count- and order-invariant, pinned bit-for-bit by test_batch.
std::vector<BatchResult> run_seed_sweep(const Scenario& scenario,
                                        std::uint64_t first_seed,
                                        std::size_t count,
                                        const BatchConfig& config = {});

/// Fraction of jobs whose mission succeeded, and mean localized count over
/// successful jobs (0 when none) — the headline numbers a sweep prints.
struct BatchSummary {
  std::size_t jobs = 0;
  std::size_t failed = 0;
  /// Successful missions whose health came back kDegraded (fault injection
  /// disrupted them but they completed). Disjoint from `failed`.
  std::size_t degraded = 0;
  double mean_discovered = 0.0;
  double mean_localized = 0.0;
  /// Mean aperture coverage over successful jobs (1 when faults are off).
  double mean_coverage = 0.0;
  double total_seconds = 0.0;  // sum of per-job wall clock
};

BatchSummary summarize(const std::vector<BatchResult>& results);

}  // namespace rfly::sim
