// Fleet-scale daisy-chain missions (paper Section 4.3 scaled out): M
// readers, each rooting a chain of N relays — static hover relays bridging
// from the reader plus one flying terminal relay — scanning one shared tag
// population. The fleet run is built from the existing staged pipeline:
//
//   1. Partition: flight legs go to the nearest reader (leg midpoint), tags
//      to the chain whose planned waypoints pass closest.
//   2. Link budget: each chain collapses to a derived single-relay
//      RflySystem — a virtual reader at the last static relay whose EIRP is
//      the exact carrier power leaving that relay (hop-by-hop through the
//      downlink PA caps, per core/daisy_chain.h) and whose receive gain
//      folds in the static uplink chain (re-amplification assumed below the
//      uplink output caps — backscatter levels sit tens of dB under them).
//      The derived carrier is the terminal hop's frequency, so SAR
//      localizes at the true relay->tag wavelength.
//   3. Stability: Eq. 3 checked per hop via evaluate_chain at the chain's
//      design point (statics + terminal at the aperture centroid). An
//      unstable chain still flies but degrades the mission health.
//   4. Planning: the energy-aware planner (sim/fleet_plan.h) selects which
//      planned waypoints each terminal relay dwells at under the battery
//      budget, replanning when the fault layer injects wind.
//   5. Inventory: ONE shared Gen2 contention round across every chain's
//      tags — the relays share the inventory channel, so tags of different
//      chains collide in the same slots. Verdicts feed each sub-mission
//      through the pipeline's InventoryOverride.
//   6. Sub-missions: one run_mission_pipeline per chain over its planned
//      route and tag subset; items merge back in global tag order (item
//      status contexts keep their chain-local tag ordinals).
//
// Determinism: the shared round draws from stream_seed(seed, inventory
// stream), chain c's sub-mission from stream_seed(seed, chain stream base +
// c), the planner is pure arithmetic — so a fleet mission is bit-identical
// across thread counts and batch modes, and never defers localize stages.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/fleet_plan.h"
#include "sim/pipeline.h"

namespace rfly::sim {

/// Per-chain accounting, for tests/benches that look inside a fleet run.
struct FleetChainReport {
  Vec3 reader{};
  /// Static hover relays, in hop order (empty when fleet.n_relays == 1 and
  /// the real reader talks to the terminal relay directly).
  std::vector<Vec3> static_relays;
  std::vector<std::size_t> leg_indices;  // global leg ordinals assigned
  std::vector<std::size_t> tag_indices;  // global tag ordinals assigned
  FleetPlan plan;
  bool stable = true;
  /// Derived virtual-reader parameters (see header comment).
  double effective_eirp_dbm = 0.0;
  double effective_rx_gain_dbi = 0.0;
  double effective_carrier_hz = 0.0;
};

struct FleetRun {
  std::vector<FleetChainReport> chains;
  /// Fleet-wide planner coverage: sum of covered aperture information over
  /// sum of planned, across chains.
  double planner_coverage = 1.0;
  std::size_t replans = 0;
  std::size_t exhausted_chains = 0;
  std::size_t unstable_chains = 0;
};

/// Run a fleet mission from materialized inputs (inputs.fleet.enabled must
/// be true). Returns the merged MissionRun: items in global tag order,
/// stage traces and fault tallies summed across chains, aperture_coverage =
/// planner coverage x tag-weighted sub-mission coverage, health kDegraded
/// when a chain was unstable, ran out of battery, or degraded downstream.
/// `detail`, when non-null, receives the per-chain breakdown.
Expected<MissionRun> run_fleet_mission(const MissionInputs& inputs,
                                       std::uint64_t seed,
                                       FleetRun* detail = nullptr);

}  // namespace rfly::sim
