#include "sim/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/forward_plane.h"
#include "drone/trajectory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fleet.h"

namespace rfly::sim {

namespace {

using Clock = std::chrono::steady_clock;

/// Span names per stage. Spans store the pointer, so these must be string
/// literals with process lifetime (stage_name() already returns literals,
/// but "stage."-prefixed names keep the trace tree self-describing).
const char* stage_span_name(Stage stage) {
  switch (stage) {
    case Stage::kPlan: return "stage.plan";
    case Stage::kFly: return "stage.fly";
    case Stage::kInventory: return "stage.inventory";
    case Stage::kMeasure: return "stage.measure";
    case Stage::kDisentangle: return "stage.disentangle";
    case Stage::kLocalize: return "stage.localize";
    case Stage::kReport: return "stage.report";
  }
  return "stage.unknown";
}

/// Times one stage body and folds the cost into the mission-wide trace.
/// Backed by a tracing span, so every stage entry also lands in the global
/// trace for `--report`/`--trace-out`. Invocations are plain increments —
/// they stay deterministic under RFLY_OBS=OFF, where elapsed_seconds()
/// reads 0 and only the `seconds` column goes dark.
class StageTimer {
 public:
  StageTimer(std::vector<StageTrace>& trace, Stage stage)
      : entry_(trace[static_cast<std::size_t>(stage)]),
        span_(stage_span_name(stage)) {}
  ~StageTimer() {
    entry_.seconds += span_.elapsed_seconds();
    ++entry_.invocations;
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageTrace& entry_;
  obs::Span span_;
};

Status validate_mission(const core::ScanMissionConfig& config,
                        const std::vector<Vec3>& flight_plan,
                        const std::vector<core::TagPlacement>& tags) {
  if (flight_plan.empty()) {
    return {StatusCode::kEmptyFlightPlan,
            "flight plan has no waypoints; nothing can fly"};
  }
  if (tags.empty()) {
    return {StatusCode::kEmptyPopulation,
            "tag population is empty; nothing to scan"};
  }
  if (!(config.grid_resolution_m > 0.0)) {
    return {StatusCode::kDegenerateGrid, "grid_resolution_m must be positive"};
  }
  if (config.grid_margin_to_path_m >= config.search_halfwidth_m) {
    return {StatusCode::kDegenerateGrid,
            "grid_margin_to_path_m (" + std::to_string(config.grid_margin_to_path_m) +
                ") >= search_halfwidth_m (" +
                std::to_string(config.search_halfwidth_m) +
                "): the margin clips the whole search window"};
  }
  return Status::ok();
}

// Fault telemetry. Counters/gauge update once per mission, the histogram
// once per discovered tag — nowhere near a hot path. Handles hoisted per
// the obs registration contract.
obs::Counter& faults_dropouts() {
  static obs::Counter& c = obs::counter("faults.dropouts");
  return c;
}
obs::Counter& faults_embedded_losses() {
  static obs::Counter& c = obs::counter("faults.embedded_losses");
  return c;
}
obs::Counter& faults_phase_bursts() {
  static obs::Counter& c = obs::counter("faults.phase_bursts");
  return c;
}
obs::Counter& faults_retries() {
  static obs::Counter& c = obs::counter("faults.retries");
  return c;
}
obs::Gauge& faults_coverage() {
  static obs::Gauge& g = obs::gauge("faults.aperture_coverage");
  return g;
}
/// Attempts per discovered tag (1 = first try succeeded): the retry
/// histogram. Counts layout — attempts are small integers.
obs::Histogram& faults_attempts() {
  static obs::Histogram& h =
      obs::histogram("faults.retry_attempts", obs::HistogramSpec::counts());
  return h;
}

std::string coverage_percent(double coverage) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1f%%", coverage * 100.0);
  return buf;
}

Vec3 measurement_centroid(const localize::MeasurementSet& measurements) {
  Vec3 centroid{0, 0, 0};
  for (const auto& m : measurements) centroid = centroid + m.relay_position;
  return centroid / static_cast<double>(measurements.size());
}

/// SAR search window around the measurement centroid (the system does not
/// know the tag position; it knows where the drone heard it). One-sided in
/// y: the operator knows which side of the path the shelf face is on; the
/// grid stops short of the path so the 1D aperture's mirror band is
/// excluded (see DESIGN.md). Shared by the localize stage and the
/// live-estimate streamer so both see the same window.
localize::GridSpec search_window(const core::ScanMissionConfig& config,
                                 const Vec3& centroid) {
  localize::GridSpec grid;
  grid.resolution_m = config.grid_resolution_m;
  grid.x_min = centroid.x - config.search_halfwidth_m;
  grid.x_max = centroid.x + config.search_halfwidth_m;
  if (config.tags_below_path) {
    grid.y_min = centroid.y - config.search_halfwidth_m;
    grid.y_max = centroid.y - config.grid_margin_to_path_m;
  } else {
    grid.y_min = centroid.y + config.grid_margin_to_path_m;
    grid.y_max = centroid.y + config.search_halfwidth_m;
  }
  return grid;
}

/// The localize stage's fully resolved config for a window centered on
/// `centroid` — shared by the inline stage and the deferred-task capture so
/// both paths localize with identical knobs.
localize::LocalizerConfig stage_localizer_config(
    const core::ScanMissionConfig& config, const Vec3& centroid) {
  localize::LocalizerConfig loc;
  loc.threads = config.localize_threads;
  loc.kernel = config.sar_kernel;
  loc.search = config.sar_search;
  loc.freq_hz = config.system.carrier_hz + config.system.freq_shift_hz;
  loc.peak_threshold_fraction = config.peak_threshold_fraction;
  loc.grid = search_window(config, centroid);
  return loc;
}

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kPlan: return "plan";
    case Stage::kFly: return "fly";
    case Stage::kInventory: return "inventory";
    case Stage::kMeasure: return "measure";
    case Stage::kDisentangle: return "disentangle";
    case Stage::kLocalize: return "localize";
    case Stage::kReport: return "report";
  }
  return "unknown";
}

Expected<MissionRun> run_mission_pipeline(const core::ScanMissionConfig& config,
                                          const channel::Environment& environment,
                                          const Vec3& reader_position,
                                          const std::vector<Vec3>& flight_plan,
                                          const std::vector<core::TagPlacement>& tags,
                                          const core::InventoryDatabase& database,
                                          std::uint64_t seed,
                                          const FaultConfig& faults,
                                          std::vector<DeferredLocalize>* deferred,
                                          const InventoryOverride* inventory_override) {
  const auto mission_start = Clock::now();
  // total_seconds stays chrono-based (it predates the obs layer and must
  // keep reporting wall time even under RFLY_OBS=OFF); the span nests the
  // stage spans for the trace tree.
  obs::Span mission_span("pipeline.mission");
  MissionRun run;
  run.trace.resize(kStageCount);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    run.trace[i].stage = static_cast<Stage>(i);
  }

  // --- plan: validate inputs, measure the trajectory. -------------------
  {
    StageTimer timer(run.trace, Stage::kPlan);
    if (Status status = validate_mission(config, flight_plan, tags);
        !status.is_ok()) {
      return std::move(status).with_context("scan mission");
    }
    run.report.flight_length_m = drone::trajectory_length(flight_plan);
  }

  // NOTE on determinism: everything below draws from this one Rng in the
  // same order as the legacy run_scan_mission (fly, then per tag:
  // inventory round, then channel collection). Stages time the work; they
  // must not reorder it, or the report stops being bit-identical.
  Rng rng(seed);
  core::RflySystem system(config.system, environment, reader_position);
  // The injector draws from its own stream (stream_seed(seed, ...)), never
  // from `rng` above — so whether faults are on or off, the mission Rng's
  // sequence is identical, and a zero-rate config changes nothing at all.
  FaultInjector injector(faults, seed);
  const bool faulty = injector.enabled();
  std::size_t aperture_clean = 0;  // measurements the physics produced
  std::size_t aperture_used = 0;   // measurements surviving fault injection

  // --- fly: simulate the flight. ----------------------------------------
  std::vector<drone::FlownPoint> flight;
  {
    StageTimer timer(run.trace, Stage::kFly);
    flight = drone::fly(flight_plan, config.flight, config.tracking, rng);
    // Fault boundary: wind shifts where the drone really was; the tracking
    // reports (what SAR is given) keep believing the calm-air model.
    injector.perturb_flight(flight);
  }

  // --- measure plane: hoist the per-waypoint forward-channel state once
  // per flight — shared across every tag below, and across missions flying
  // the same flight through the same system via the global plane cache.
  // Entirely RNG-free, so the mission Rng sequence (and with it the report)
  // is untouched; `off` skips the hoist and keeps the seed's scalar loop.
  const core::MeasurePlane plane_mode =
      core::resolve_measure_plane(config.measure_plane);
  std::shared_ptr<const core::ForwardPlane> plane;
  std::vector<core::SynthChannels> synth;
  if (plane_mode != core::MeasurePlane::kOff && !flight.empty() &&
      !tags.empty()) {
    StageTimer timer(run.trace, Stage::kMeasure);
    plane = core::global_forward_plane_cache().plane(system, flight);
    if (plane_mode == core::MeasurePlane::kFast) {
      std::vector<Vec3> positions;
      positions.reserve(tags.size());
      for (const auto& placement : tags) positions.push_back(placement.position);
      synth = core::synthesize_forward_channels(system, *plane, positions);
    }
  }

  // Gen2 discovery: run inventory rounds at each tag's closest approach.
  // (One round per tag population keeps the model simple; collided tags are
  // resolved by the Q-algorithm within the round.)
  std::vector<gen2::Tag> machines;
  machines.reserve(tags.size());
  for (std::size_t i = 0; i < tags.size(); ++i) {
    machines.emplace_back(tags[i].config, seed + 100 + i);
  }

  for (std::size_t i = 0; i < tags.size(); ++i) {
    core::ScannedItem item;
    item.epc = tags[i].config.epc;
    item.description = database.lookup(item.epc);

    // --- inventory: Gen2 round at the closest approach. -----------------
    if (inventory_override != nullptr) {
      // Discovery already ran in a shared contention round outside this
      // mission (the fleet's fleet-wide Gen2 round, sim/fleet.cpp): fold in
      // its verdict. The mission Rng is untouched — the shared round draws
      // from its own stream.
      StageTimer timer(run.trace, Stage::kInventory);
      item.discovered = i < inventory_override->discovered.size() &&
                        inventory_override->discovered[i];
    } else {
      StageTimer timer(run.trace, Stage::kInventory);
      // Closest approach drives the air-interface conditions for discovery.
      const auto closest = std::min_element(
          flight.begin(), flight.end(), [&](const auto& a, const auto& b) {
            return a.actual.distance_to(tags[i].position) <
                   b.actual.distance_to(tags[i].position);
          });
      std::vector<core::TagAgent> agents{
          {&machines[i],
           system.tag_incident_power_dbm(closest->actual, tags[i].position),
           system.reply_snr_db(closest->actual, tags[i].position)}};
      core::InventoryRoundConfig round = config.inventory;
      if (config.use_select) {
        gen2::CommandContext ctx;
        ctx.incident_power_dbm = agents[0].incident_power_dbm;
        machines[i].on_command(gen2::Command{config.select}, ctx);
        round.sel_target = gen2::SelTarget::kSl;
      }
      reader::QAlgorithm q_algo(static_cast<double>(config.inventory.q));
      const auto outcome = core::run_inventory(agents, round, q_algo, rng);
      item.discovered =
          std::find(outcome.epcs.begin(), outcome.epcs.end(), item.epc) !=
          outcome.epcs.end();
    }
    if (!item.discovered) {
      item.status =
          Status{StatusCode::kUndecodablePopulation,
                 inventory_override != nullptr
                     ? "tag answered no slot of the fleet's shared inventory "
                       "round (unpowered, undecodable, or lost to cross-relay "
                       "contention)"
                     : "tag answered no inventory round at its closest "
                       "approach (unpowered or reply below decode SNR)"}
              .with_context("tag " + std::to_string(i));
      StageTimer timer(run.trace, Stage::kReport);
      run.report.items.push_back(std::move(item));
      continue;
    }
    ++run.report.discovered;

    // --- measure: channel collection along the whole flight (the system
    // drops points where the tag is unpowered or undecodable). ------------
    localize::MeasurementSet clean;
    {
      StageTimer timer(run.trace, Stage::kMeasure);
      auto collected =
          !plane ? system.try_collect_measurements(flight, tags[i].position, rng)
          : plane_mode == core::MeasurePlane::kFast
              ? system.try_collect_measurements(flight, rng, *plane, synth[i])
              : system.try_collect_measurements(flight, tags[i].position, rng,
                                                *plane);
      if (!collected) {
        item.status =
            collected.status().with_context("tag " + std::to_string(i));
      } else {
        clean = std::move(collected.value());
      }
    }
    const std::size_t clean_count = clean.size();
    aperture_clean += clean_count;

    // --- fault boundary + downstream stages, with bounded attempts. With
    // faults disabled this collapses to the legacy single pass over the
    // clean set; with faults on, each attempt re-draws the fault pattern
    // from the injector's own stream and localization runs on whatever
    // partial aperture survives. ------------------------------------------
    localize::MeasurementSet measurements;
    std::size_t used = 0;
    int attempt = 0;
    Status attempt_status;
    bool localized = false;
    Vec3 estimate{};
    while (true) {
      ++attempt;
      if (attempt > 1) injector.count_retry();
      measurements = faulty ? injector.afflict(clean) : std::move(clean);
      used = measurements.size();
      attempt_status = Status::ok();

      if (used < 3) {
        if (faulty && used < clean_count) {
          attempt_status =
              Status{StatusCode::kInsufficientData,
                     "only " + std::to_string(used) + " of " +
                         std::to_string(clean_count) +
                         " measurements survived fault injection after " +
                         std::to_string(attempt) +
                         " attempt(s); SAR needs >= 3"}
                  .with_context("tag " + std::to_string(i));
        } else {
          attempt_status = Status{StatusCode::kInsufficientData,
                                  "only " + std::to_string(used) +
                                      " usable measurements; SAR needs >= 3"}
                               .with_context("tag " + std::to_string(i));
        }
      } else {
        // --- disentangle: Eq. 10 per measurement. -------------------------
        localize::DisentangledSet half_link;
        {
          StageTimer timer(run.trace, Stage::kDisentangle);
          half_link = localize::disentangle(measurements);
        }

        // --- live estimates (incremental search only): the measure stage
        // replays the surviving aperture sample-by-sample through the SAR
        // accumulator, emitting the estimate a mission display would have
        // shown while the drone flew. Live cells are coarse (the final
        // localization below still runs at full resolution), and coverage
        // is against the clean aperture, so the last entry agrees with the
        // item's fault accounting. On a retry the sequence is rebuilt —
        // the report keeps the attempt that produced the estimate. --------
        if (config.sar_search == localize::SarSearch::kIncremental) {
          StageTimer timer(run.trace, Stage::kMeasure);
          const Vec3 centroid = measurement_centroid(measurements);
          localize::GridSpec live_grid = search_window(config, centroid);
          live_grid.resolution_m =
              std::max(config.grid_resolution_m,
                       localize::LocalizerConfig{}.coarse_resolution_m);
          localize::SarAccumulator acc(
              live_grid, config.system.carrier_hz + config.system.freq_shift_hz,
              /*z_plane=*/0.0, config.sar_kernel, config.localize_threads);
          item.live.clear();
          item.live.reserve(half_link.channels.size());
          for (std::size_t s = 0; s < half_link.channels.size(); ++s) {
            acc.add_measurement(half_link.positions[s], half_link.channels[s]);
            item.live.push_back(acc.estimate(clean_count));
          }
        }

        // --- localize: SAR over a window centered on the measurement
        // centroid. --------------------------------------------------------
        if (deferred != nullptr && !faulty) {
          // Hoisted onto the batch runner's shared plane: capture the stage
          // inputs, leave the item pending (not localized, status OK). Safe
          // only because faults are off — the single-pass loop below never
          // consumes `localized`, so the outcome can be folded in later via
          // apply_deferred_result without changing any draw or retry.
          const Vec3 centroid = measurement_centroid(measurements);
          DeferredLocalize task;
          task.item_index = run.report.items.size();
          task.tag_index = i;
          task.half_link = std::move(half_link);
          task.config = stage_localizer_config(config, centroid);
          deferred->push_back(std::move(task));
        } else {
          StageTimer timer(run.trace, Stage::kLocalize);
          const Vec3 centroid = measurement_centroid(measurements);
          const localize::LocalizerConfig loc =
              stage_localizer_config(config, centroid);

          auto result = localize::localize_2d_from(half_link, loc);
          if (!result) {
            attempt_status =
                result.status().with_context("tag " + std::to_string(i));
          } else {
            localized = true;
            estimate = {result->x, result->y, 0.0};
          }
        }
      }
      if (localized) break;
      // Retry only when a fresh fault draw could change the outcome: faults
      // on, attempts left, and enough clean measurements that an affliction
      // pattern decides success.
      if (!faulty || attempt >= faults.max_attempts || clean_count < 3) break;
    }

    item.measurements = used;
    aperture_used += used;
    if (faulty) faults_attempts().observe(static_cast<double>(attempt));
    if (localized) {
      item.localized = true;
      item.estimate = estimate;
      ++run.report.localized;
      if (faulty && used < clean_count) {
        // Graceful degradation: the item IS localized, but from a partial
        // aperture — say so, with the coverage figure, instead of hiding it.
        const double coverage =
            static_cast<double>(used) / static_cast<double>(clean_count);
        item.status =
            Status{StatusCode::kDegraded,
                   "localized from partial aperture: " + std::to_string(used) +
                       "/" + std::to_string(clean_count) +
                       " measurements (coverage " +
                       coverage_percent(coverage) + ")"}
                .with_context("tag " + std::to_string(i));
      }
    } else if (item.status.is_ok()) {
      // Keep an earlier collect-stage status if one was recorded.
      item.status = attempt_status;
    }

    StageTimer timer(run.trace, Stage::kReport);
    run.report.items.push_back(std::move(item));
  }

  // --- graceful-degradation accounting: mission health + coverage. ------
  run.faults = injector.stats();
  run.aperture_coverage =
      aperture_clean > 0 ? static_cast<double>(aperture_used) /
                               static_cast<double>(aperture_clean)
                         : 1.0;
  if (faulty) {
    const FaultStats& fs = run.faults;
    faults_dropouts().add(fs.dropouts);
    faults_embedded_losses().add(fs.embedded_losses);
    faults_phase_bursts().add(fs.phase_bursts);
    faults_retries().add(fs.retries);
    faults_coverage().set(run.aperture_coverage);
    if (fs.disruptions() > 0) {
      // The mission completed; health says on what footing. Continuous
      // impairments (wind, CFO) make data noisier but are not disruptions —
      // see FaultStats::disruptions().
      run.health =
          Status{StatusCode::kDegraded,
                 std::to_string(fs.dropouts) + " dropout(s), " +
                     std::to_string(fs.embedded_losses) +
                     " embedded-tag loss(es), " +
                     std::to_string(fs.phase_bursts) + " phase burst(s), " +
                     std::to_string(fs.retries) +
                     " retry(s); aperture coverage " +
                     coverage_percent(run.aperture_coverage)}
              .with_context("fault injection");
    }
  }

  run.total_seconds =
      std::chrono::duration<double>(Clock::now() - mission_start).count();
  return run;
}

void apply_deferred_result(MissionRun& run, std::size_t item_index,
                           std::size_t tag_index,
                           const Expected<localize::LocalizationResult>& result,
                           double seconds) {
  StageTrace& localize_trace =
      run.trace[static_cast<std::size_t>(Stage::kLocalize)];
  localize_trace.seconds += seconds;
  ++localize_trace.invocations;
  run.total_seconds += seconds;

  core::ScannedItem& item = run.report.items[item_index];
  if (result) {
    item.localized = true;
    item.estimate = {result->x, result->y, 0.0};
    ++run.report.localized;
  } else {
    // Same context the inline stage writes, so the batched item status is
    // string-identical to the per-mission one.
    item.status =
        result.status().with_context("tag " + std::to_string(tag_index));
  }
}

MissionInputs materialize(const Scenario& scenario) {
  MissionInputs inputs;
  inputs.config = mission_config(scenario);
  inputs.environment = scenario.environment.build();
  inputs.reader_position = scenario.reader_position;
  inputs.plan = flight_plan(scenario);
  inputs.leg_sizes.reserve(scenario.legs.size());
  for (const auto& leg : scenario.legs) inputs.leg_sizes.push_back(leg.points);
  inputs.tags = tag_placements(scenario);
  inputs.db = database(scenario);
  inputs.faults = scenario.faults;
  inputs.fleet = scenario.fleet;
  inputs.scenario_name = scenario.name;
  return inputs;
}

Expected<MissionRun> run_scenario(const Scenario& scenario) {
  return run_scenario(scenario, scenario.seed);
}

Expected<MissionRun> run_scenario(const Scenario& scenario, std::uint64_t seed) {
  if (Status status = validate(scenario); !status.is_ok()) {
    return std::move(status).with_context("run_scenario");
  }
  const MissionInputs inputs = materialize(scenario);
  if (inputs.fleet.enabled) {
    return run_fleet_mission(inputs, seed)
        .with_context("scenario '" + inputs.scenario_name + "'");
  }
  return run_mission_pipeline(inputs.config, inputs.environment,
                              inputs.reader_position, inputs.plan, inputs.tags,
                              inputs.db, seed, inputs.faults)
      .with_context("scenario '" + inputs.scenario_name + "'");
}

}  // namespace rfly::sim

namespace rfly::core {

// Legacy entry point (declared in core/scan_mission.h): a thin adapter over
// the staged pipeline that discards the stage trace. On mission-level error
// it preserves the legacy contract as far as one existed: an empty-tag
// mission still reports the flight length; an empty flight plan (which the
// legacy code crashed on) yields an empty report.
ScanReport run_scan_mission(const ScanMissionConfig& config,
                            const channel::Environment& environment,
                            const Vec3& reader_position,
                            const std::vector<Vec3>& flight_plan,
                            std::vector<TagPlacement>& tags,
                            const InventoryDatabase& database,
                            std::uint64_t seed) {
  auto run = sim::run_mission_pipeline(config, environment, reader_position,
                                       flight_plan, tags, database, seed);
  if (!run) {
    ScanReport report;
    report.flight_length_m = drone::trajectory_length(flight_plan);
    return report;
  }
  return std::move(run->report);
}

}  // namespace rfly::core
