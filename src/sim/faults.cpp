#include "sim/faults.h"

#include <complex>

namespace rfly::sim {

namespace {
/// Stream tag for the fault Rng ("fault" in ASCII): keeps the injector's
/// draws disjoint from the mission Rng (seeded with the raw seed) and from
/// the batch runner's per-trial streams (stream_seed(seed, trial)).
constexpr std::uint64_t kFaultStream = 0x6661756C74ull;
}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t mission_seed)
    : config_(config), rng_(stream_seed(mission_seed, kFaultStream)) {
  // The residual CFO is a property of the relay oscillator for the whole
  // mission, not of one measurement: one slope per mission.
  if (config_.relay_cfo_std_rad > 0.0) {
    cfo_slope_rad_ = rng_.gaussian(0.0, config_.relay_cfo_std_rad);
  }
}

void FaultInjector::perturb_flight(std::vector<drone::FlownPoint>& flight) {
  if (!(config_.wind_jitter_std_m > 0.0)) return;
  for (auto& point : flight) {
    point.actual.x += rng_.gaussian(0.0, config_.wind_jitter_std_m);
    point.actual.y += rng_.gaussian(0.0, config_.wind_jitter_std_m);
    point.actual.z += rng_.gaussian(0.0, config_.wind_jitter_std_m);
    ++stats_.wind_points;
  }
}

localize::MeasurementSet FaultInjector::afflict(
    const localize::MeasurementSet& clean) {
  localize::MeasurementSet survivors;
  survivors.reserve(clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (config_.dropout > 0.0 && rng_.chance(config_.dropout)) {
      ++stats_.dropouts;
      continue;
    }
    if (config_.embedded_loss > 0.0 && rng_.chance(config_.embedded_loss)) {
      // No embedded reference at this position: Eq. 10 cannot divide out
      // the reader-relay half-link, so the measurement is unusable.
      ++stats_.embedded_losses;
      continue;
    }
    localize::RelayMeasurement m = clean[i];
    double extra_phase_rad = 0.0;
    if (config_.phase_burst > 0.0 && rng_.chance(config_.phase_burst)) {
      extra_phase_rad += rng_.gaussian(0.0, config_.phase_burst_std_rad);
      ++stats_.phase_bursts;
    }
    if (cfo_slope_rad_ != 0.0) {
      extra_phase_rad += cfo_slope_rad_ * static_cast<double>(i);
      ++stats_.cfo_measurements;
    }
    // Target channel only: phase error common to the target and embedded
    // channels cancels in Eq. 10 (that is the mirrored architecture's whole
    // point); what survives to hurt SAR is the differential residue.
    if (extra_phase_rad != 0.0) {
      m.target_channel *= std::polar(1.0, extra_phase_rad);
    }
    survivors.push_back(m);
  }
  return survivors;
}

}  // namespace rfly::sim
