// Scoped tracing spans: an RAII `Span` stamps monotonic-clock begin/end
// times into a per-thread buffer (no cross-thread synchronization on the
// hot path), tracking parent/child nesting through a thread-local open-span
// stack. drain_trace() empties every thread's buffer into one trace ordered
// by start time, ready for the `--report` tree or a `--trace-out` JSON file.
//
// Span names must be string literals (or otherwise outlive the drain):
// records store the pointer, not a copy — opening a span is two clock-free
// writes plus one clock read.
//
// Like the metrics layer, everything compiles to no-ops under
// RFLY_OBS_ENABLED=0; Span::elapsed_seconds() then reports 0.0, which is
// why stage timings read as zero in an OFF build while every computed
// value stays bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#ifndef RFLY_OBS_ENABLED
#define RFLY_OBS_ENABLED 1
#endif

namespace rfly::obs {

/// One completed span. Times are nanoseconds on the process-wide monotonic
/// clock (comparable across threads). `parent` is the per-thread sequence
/// id of the enclosing span, or -1 for a root; `depth` its nesting level.
struct SpanRecord {
  const char* name = "";
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t thread = 0;  // small sequential id, 0 = first tracing thread
  std::uint32_t depth = 0;
  std::int64_t seq = -1;     // per-thread open order
  std::int64_t parent = -1;  // seq of the enclosing span on the same thread
  double seconds() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

/// A drained trace: completed spans from every thread, ordered by start
/// time. `dropped` counts spans discarded because a thread buffer hit its
/// cap between drains (kept so truncation is never silent).
struct Trace {
  std::vector<SpanRecord> spans;
  std::uint64_t dropped = 0;
  bool empty() const { return spans.empty(); }
};

#if RFLY_OBS_ENABLED

/// Nanoseconds on the shared monotonic clock (steady_clock rebased to the
/// first call, so traces start near zero).
std::uint64_t monotonic_ns();

class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Time since the span opened (the span is still running).
  double elapsed_seconds() const {
    return static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
  }

 private:
  const char* name_;
  std::uint64_t start_ns_;
  std::uint32_t depth_;
  std::int64_t seq_;
  std::int64_t parent_;
};

/// Move every thread's completed spans into one start-ordered trace. Spans
/// still open stay put and surface in a later drain once they close.
Trace drain_trace();

#else  // !RFLY_OBS_ENABLED

inline std::uint64_t monotonic_ns() { return 0; }

class Span {
 public:
  explicit Span(const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  double elapsed_seconds() const { return 0.0; }
};

inline Trace drain_trace() { return {}; }

#endif  // RFLY_OBS_ENABLED

}  // namespace rfly::obs
