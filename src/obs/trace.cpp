#include "obs/trace.h"

#if RFLY_OBS_ENABLED

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace rfly::obs {

namespace {

/// Per-thread buffers survive their thread (a pool worker's spans must be
/// drainable after the pool dies), so the collector owns them and threads
/// hold only a cached pointer.
struct ThreadBuffer {
  std::uint32_t thread_id = 0;
  std::mutex mu;                      // guards completed + dropped vs drain
  std::vector<SpanRecord> completed;  // spans closed since the last drain
  std::uint64_t dropped = 0;
  // Owner-thread-only state (never touched by drain):
  std::int64_t next_seq = 0;
  std::vector<std::int64_t> open_seqs;  // stack of open spans' seq ids
};

/// Cap per-thread completed records between drains; a run that never drains
/// (library user ignoring tracing) must not grow memory without bound.
constexpr std::size_t kMaxBufferedSpans = 1 << 16;

struct Collector {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;

  static Collector& instance() {
    static Collector c;
    return c;
  }

  ThreadBuffer& local() {
    thread_local ThreadBuffer* mine = [this] {
      std::lock_guard<std::mutex> lk(mu);
      buffers.push_back(std::make_unique<ThreadBuffer>());
      buffers.back()->thread_id = static_cast<std::uint32_t>(buffers.size() - 1);
      return buffers.back().get();
    }();
    return *mine;
  }
};

}  // namespace

std::uint64_t monotonic_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
          .count());
}

Span::Span(const char* name) : name_(name) {
  ThreadBuffer& buf = Collector::instance().local();
  depth_ = static_cast<std::uint32_t>(buf.open_seqs.size());
  parent_ = buf.open_seqs.empty() ? -1 : buf.open_seqs.back();
  seq_ = buf.next_seq++;
  buf.open_seqs.push_back(seq_);
  start_ns_ = monotonic_ns();  // last: exclude bookkeeping from the span
}

Span::~Span() {
  const std::uint64_t end_ns = monotonic_ns();  // first, for the same reason
  ThreadBuffer& buf = Collector::instance().local();
  buf.open_seqs.pop_back();
  std::lock_guard<std::mutex> lk(buf.mu);
  if (buf.completed.size() >= kMaxBufferedSpans) {
    ++buf.dropped;
    return;
  }
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.end_ns = end_ns;
  record.thread = buf.thread_id;
  record.depth = depth_;
  record.seq = seq_;
  record.parent = parent_;
  buf.completed.push_back(record);
}

Trace drain_trace() {
  Collector& collector = Collector::instance();
  Trace trace;
  std::lock_guard<std::mutex> lk(collector.mu);
  for (auto& buf : collector.buffers) {
    std::lock_guard<std::mutex> buf_lk(buf->mu);
    trace.spans.insert(trace.spans.end(), buf->completed.begin(),
                       buf->completed.end());
    trace.dropped += buf->dropped;
    buf->completed.clear();
    buf->dropped = 0;
  }
  std::sort(trace.spans.begin(), trace.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.seq < b.seq;
            });
  return trace;
}

}  // namespace rfly::obs

#endif  // RFLY_OBS_ENABLED
