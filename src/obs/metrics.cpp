#include "obs/metrics.h"

#include <bit>
#include <map>
#include <memory>
#include <mutex>

namespace rfly::obs {

HistogramSpec HistogramSpec::duration_seconds() {
  HistogramSpec spec;
  // 1 us .. 16.8 s in powers of 4: fine enough to separate a counter bump
  // from a row chunk from a whole mission, coarse enough to scan linearly.
  double bound = 1e-6;
  for (int i = 0; i < 13; ++i) {
    spec.bounds.push_back(bound);
    bound *= 4.0;
  }
  return spec;
}

HistogramSpec HistogramSpec::counts() {
  HistogramSpec spec;
  double bound = 1.0;
  for (int i = 0; i < 17; ++i) {
    spec.bounds.push_back(bound);
    bound *= 2.0;
  }
  return spec;
}

#if RFLY_OBS_ENABLED

std::size_t shard_index() {
  // Threads take stripes round-robin at first use; a pool of n workers gets
  // n distinct stripes (mod kShardCount), so writers almost never collide.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  return index;
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Gauge::to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::from_bits(std::uint64_t b) { return std::bit_cast<double>(b); }

void Gauge::add(double delta) {
  std::uint64_t seen = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(seen, to_bits(from_bits(seen) + delta),
                                      std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::string name, HistogramSpec spec)
    : name_(std::move(name)), bounds_(std::move(spec.bounds)) {
  for (auto& shard : shards_) {
    shard.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double x) {
  std::size_t bucket = bounds_.size();  // overflow unless a bound catches x
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (x <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  Shard& shard = shards_[shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = shard.sum_bits.load(std::memory_order_relaxed);
  while (!shard.sum_bits.compare_exchange_weak(
      seen, std::bit_cast<std::uint64_t>(std::bit_cast<double>(seen) + x),
      std::memory_order_relaxed)) {
  }
}

struct Registry::Impl {
  mutable std::mutex mu;
  // Heap-allocated metrics (atomics are pinned in place); handles returned
  // to callers stay valid for the process lifetime.
  std::map<std::string, std::unique_ptr<Counter>> counter_by_name;
  std::map<std::string, std::unique_ptr<Gauge>> gauge_by_name;
  std::map<std::string, std::unique_ptr<Histogram>> histogram_by_name;
};

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto it = im.counter_by_name.find(name);
  if (it == im.counter_by_name.end()) {
    it = im.counter_by_name
             .emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto it = im.gauge_by_name.find(name);
  if (it == im.gauge_by_name.end()) {
    it = im.gauge_by_name.emplace(name, std::unique_ptr<Gauge>(new Gauge(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               const HistogramSpec& spec) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto it = im.histogram_by_name.find(name);
  if (it == im.histogram_by_name.end()) {
    it = im.histogram_by_name
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name, spec)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : im.counter_by_name) {
    snap.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : im.gauge_by_name) {
    snap.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : im.histogram_by_name) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds_;
    h.counts.assign(h.bounds.size() + 1, 0);
    for (const auto& shard : histogram->shards_) {
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        h.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
      }
      h.sum += std::bit_cast<double>(
          shard.sum_bits.load(std::memory_order_relaxed));
    }
    for (std::uint64_t c : h.counts) h.count += c;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (auto& [name, counter] : im.counter_by_name) {
    for (auto& cell : counter->cells_) cell.v.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : im.gauge_by_name) {
    gauge->bits_.store(Gauge::to_bits(0.0), std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : im.histogram_by_name) {
    for (auto& shard : histogram->shards_) {
      for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
      shard.sum_bits.store(std::bit_cast<std::uint64_t>(0.0),
                           std::memory_order_relaxed);
    }
  }
}

#endif  // RFLY_OBS_ENABLED

}  // namespace rfly::obs
