// Lock-cheap metrics for the compute hot paths: counters, gauges, and
// fixed-bucket histograms whose updates land in thread-striped shards (one
// relaxed atomic per update, cache-line padded so concurrent writers never
// share a line) and are only summed when a snapshot is taken. A SAR row
// chunk therefore pays ~one atomic; registration (name lookup under a
// mutex) is the slow path — hoist handles out of hot loops.
//
// The whole layer compiles to no-ops when RFLY_OBS_ENABLED is 0 (CMake
// -DRFLY_OBS=OFF): handles become empty structs, updates vanish, snapshots
// come back empty, and the serial-parity goldens stay bit-identical because
// no probe ever influenced a computed value in the first place.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#ifndef RFLY_OBS_ENABLED
#define RFLY_OBS_ENABLED 1
#endif

namespace rfly::obs {

/// Compile-time switch, usable as `if constexpr (obs::kEnabled)` to guard
/// probe-only work (e.g. the clock reads feeding a latency histogram).
inline constexpr bool kEnabled = RFLY_OBS_ENABLED != 0;

/// Writer stripes per metric. More stripes than typical worker counts, so
/// two pool threads almost never hit the same cache line.
inline constexpr std::size_t kShardCount = 16;

/// Upper bucket bounds for a histogram (strictly increasing); a value x
/// lands in the first bucket with x <= bound, or the implicit overflow
/// bucket past the last bound. Layouts are fixed at registration so
/// snapshots from different runs are comparable bucket-for-bucket.
struct HistogramSpec {
  std::vector<double> bounds;

  /// Latency layout: 1 us .. ~16 s in powers of 4 (13 bounds). Covers a
  /// sub-microsecond counter bump and a minutes-long mission tail alike.
  static HistogramSpec duration_seconds();
  /// Size/count layout: 1, 2, 4, ... 65536 (17 bounds).
  static HistogramSpec counts();
};

// --- Snapshot types (defined in both modes; empty when disabled). --------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Point-in-time aggregate of every registered metric, names sorted.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

#if RFLY_OBS_ENABLED

/// Stable per-thread stripe index in [0, kShardCount).
std::size_t shard_index();

/// Monotonically increasing event count. add() is one relaxed fetch_add on
/// the calling thread's stripe; value() sums the stripes (racy-exact only
/// once concurrent writers are quiesced, like any sharded counter).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const;

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  std::array<Cell, kShardCount> cells_{};
};

/// Last-written instantaneous value (queue depth, worker count). set() is a
/// relaxed store; add() a CAS loop (gauges are not hot-path metrics).
class Gauge {
 public:
  void set(double v) { bits_.store(to_bits(v), std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return from_bits(bits_.load(std::memory_order_relaxed)); }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  static std::uint64_t to_bits(double v);
  static double from_bits(std::uint64_t b);
  std::string name_;
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram. observe() finds the bucket (branch-poor linear
/// scan: layouts have ~13-17 bounds) and bumps the calling thread's stripe —
/// two relaxed atomics per observation (bucket count + running sum).
class Histogram {
 public:
  void observe(double x);
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  Histogram(std::string name, HistogramSpec spec);
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;  // bounds + overflow
    std::atomic<std::uint64_t> sum_bits{0};          // double accumulated via CAS
  };
  std::string name_;
  std::vector<double> bounds_;
  std::array<Shard, kShardCount> shards_;
};

/// Process-wide metric registry. Handles returned by counter()/gauge()/
/// histogram() are stable for the process lifetime; the same name always
/// yields the same metric (a histogram re-registered with a different spec
/// keeps its original layout).
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, const HistogramSpec& spec);

  /// Aggregate every stripe of every metric. Sorted by name.
  MetricsSnapshot snapshot() const;

  /// Zero every value (metrics stay registered). Benches/tests only — not
  /// safe against concurrent writers.
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

#else  // !RFLY_OBS_ENABLED — every probe is a no-op the optimizer deletes.

inline std::size_t shard_index() { return 0; }

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  void inc() {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  double value() const { return 0.0; }
};

class Histogram {
 public:
  void observe(double) {}
  const std::vector<double>& bounds() const {
    static const std::vector<double> kNone;
    return kNone;
  }
};

class Registry {
 public:
  static Registry& global() {
    static Registry r;
    return r;
  }
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&, const HistogramSpec&) {
    return histogram_;
  }
  MetricsSnapshot snapshot() const { return {}; }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // RFLY_OBS_ENABLED

// --- Convenience wrappers over the global registry. ----------------------

inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}
inline Histogram& histogram(const std::string& name, const HistogramSpec& spec) {
  return Registry::global().histogram(name, spec);
}
inline MetricsSnapshot snapshot() { return Registry::global().snapshot(); }
inline void reset_metrics() { Registry::global().reset(); }

}  // namespace rfly::obs
