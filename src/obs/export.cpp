#include "obs/export.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <map>

#include "common/json.h"

namespace rfly::obs {

namespace {

/// Shared json_number: %.17g for finite doubles, `null` for NaN/Inf (a
/// gauge set to a non-finite value or an empty histogram's statistics must
/// not emit the bare `nan` token — no JSON parser accepts it).
void append_double(std::string& out, double v) { out += json_number(v); }

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// Metric names are ASCII identifiers by convention, but escape the JSON
/// specials anyway so a stray name can never corrupt the document.
void append_quoted(std::string& out, const std::string& s) {
  out += json_quote(s);
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ", ";
    append_quoted(out, snapshot.counters[i].name);
    out += ": ";
    append_u64(out, snapshot.counters[i].value);
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ", ";
    append_quoted(out, snapshot.gauges[i].name);
    out += ": ";
    append_double(out, snapshot.gauges[i].value);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out += ", ";
    append_quoted(out, h.name);
    out += ": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      append_double(out, h.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      append_u64(out, h.counts[b]);
    }
    out += "], \"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_double(out, h.sum);
    out += "}";
  }
  out += "}}";
  return out;
}

std::string trace_to_json(const Trace& trace) {
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const auto& span = trace.spans[i];
    if (i > 0) out += ",";
    out += "\n  {\"name\": ";
    append_quoted(out, span.name);
    out += ", \"ph\": \"X\", \"pid\": 0, \"tid\": ";
    append_u64(out, span.thread);
    out += ", \"ts\": ";
    append_double(out, static_cast<double>(span.start_ns) * 1e-3);
    out += ", \"dur\": ";
    append_double(out, static_cast<double>(span.end_ns - span.start_ns) * 1e-3);
    out += "}";
  }
  out += "\n], \"droppedSpans\": ";
  append_u64(out, trace.dropped);
  out += "}\n";
  return out;
}

void print_metrics(std::FILE* out, const MetricsSnapshot& snapshot) {
  if (snapshot.empty()) {
    std::fprintf(out, "  (no metrics recorded)\n");
    return;
  }
  for (const auto& c : snapshot.counters) {
    std::fprintf(out, "  counter    %-28s %12" PRIu64 "\n", c.name.c_str(),
                 c.value);
  }
  for (const auto& g : snapshot.gauges) {
    std::fprintf(out, "  gauge      %-28s %12.6g\n", g.name.c_str(), g.value);
  }
  for (const auto& h : snapshot.histograms) {
    std::fprintf(out, "  histogram  %-28s count %-8" PRIu64 " mean %.6g\n",
                 h.name.c_str(), h.count, h.mean());
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;  // only populated buckets
      if (b < h.bounds.size()) {
        std::fprintf(out, "             %12s<= %-12.3g %10" PRIu64 "\n", "",
                     h.bounds[b], h.counts[b]);
      } else {
        std::fprintf(out, "             %12s>  %-12.3g %10" PRIu64 "\n", "",
                     h.bounds.empty() ? 0.0 : h.bounds.back(), h.counts[b]);
      }
    }
  }
}

void print_span_tree(std::FILE* out, const Trace& trace) {
  if (trace.empty()) {
    std::fprintf(out, "  (no spans recorded)\n");
    return;
  }
  // Aggregate per name first: the tree below can be long.
  struct Agg {
    std::uint64_t calls = 0;
    double total = 0.0;
  };
  std::map<std::string, Agg> by_name;
  std::uint32_t max_thread = 0;
  for (const auto& span : trace.spans) {
    Agg& agg = by_name[span.name];
    ++agg.calls;
    agg.total += span.seconds();
    max_thread = std::max(max_thread, span.thread);
  }
  std::fprintf(out, "  %-28s %10s %12s %12s\n", "span", "calls", "total [ms]",
               "mean [ms]");
  for (const auto& [name, agg] : by_name) {
    std::fprintf(out, "  %-28s %10" PRIu64 " %12.3f %12.3f\n", name.c_str(),
                 agg.calls, 1e3 * agg.total,
                 1e3 * agg.total / static_cast<double>(agg.calls));
  }
  // Full tree, capped so a 100-seed sweep cannot flood the terminal (the
  // complete record is still available via --trace-out).
  constexpr std::size_t kMaxTreeLines = 200;
  std::size_t printed = 0;
  for (std::uint32_t t = 0; t <= max_thread && printed < kMaxTreeLines; ++t) {
    bool any = false;
    for (const auto& span : trace.spans) {
      if (span.thread != t) continue;
      if (printed >= kMaxTreeLines) break;
      if (!any) {
        std::fprintf(out, "  thread %u:\n", t);
        any = true;
      }
      std::fprintf(out, "    %*s%-*s %10.3f ms\n", 2 * span.depth, "",
                   std::max(1, 26 - 2 * static_cast<int>(span.depth)),
                   span.name, 1e3 * span.seconds());
      ++printed;
    }
  }
  if (printed >= kMaxTreeLines && trace.spans.size() > printed) {
    std::fprintf(out, "  (+%zu more spans; use --trace-out for the full trace)\n",
                 trace.spans.size() - printed);
  }
  if (trace.dropped > 0) {
    std::fprintf(out, "  (%" PRIu64 " spans dropped at the buffer cap)\n",
                 trace.dropped);
  }
}

void print_report(std::FILE* out, const Trace& trace,
                  const MetricsSnapshot& snapshot) {
  if (!kEnabled) {
    std::fprintf(out,
                 "observability compiled out (RFLY_OBS=OFF); nothing to "
                 "report\n");
    return;
  }
  std::fprintf(out, "--- spans ---\n");
  print_span_tree(out, trace);
  std::fprintf(out, "--- metrics ---\n");
  print_metrics(out, snapshot);
}

bool write_trace_file(const std::string& path, const Trace& trace,
                      std::string* error) {
  if (path.empty() || path == "-") return true;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot write trace to '" + path + "': " + std::strerror(errno);
    }
    return false;
  }
  const std::string json = trace_to_json(trace);
  const bool wrote = std::fwrite(json.data(), 1, json.size(), file) ==
                     json.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    if (error != nullptr) *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

bool write_trace_file(const std::string& path, const Trace& trace) {
  std::string error;
  if (!write_trace_file(path, trace, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return false;
  }
  return true;
}

}  // namespace rfly::obs
