// Exporters for the observability layer: metrics snapshots and drained
// traces rendered as JSON (machine readers: the bench --out files gain a
// "metrics" key, --trace-out gets Chrome trace-event records) or as the
// human-readable --report summary (per-thread span tree + metric table).
// Works in both RFLY_OBS modes — an OFF build just renders empty objects.
#pragma once

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfly::obs {

/// {"counters": {...}, "gauges": {...}, "histograms": {"name":
/// {"bounds": [...], "counts": [...], "count": n, "sum": s}}}.
/// Embeddable as a value inside a larger JSON object.
std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Chrome trace-event format: {"traceEvents": [{"name", "ph": "X",
/// "ts"/"dur" in microseconds, "pid": 0, "tid"}], "droppedSpans": n}.
/// Load in chrome://tracing or Perfetto.
std::string trace_to_json(const Trace& trace);

/// Human-readable metric table: counters, gauges, then histograms with
/// count/mean and the populated buckets.
void print_metrics(std::FILE* out, const MetricsSnapshot& snapshot);

/// Per-thread span tree (indent = nesting depth) followed by an aggregate
/// per-name line (calls, total, mean). Spans of the same thread print in
/// start order, so the tree reads top-down like a call stack.
void print_span_tree(std::FILE* out, const Trace& trace);

/// The --report payload: span tree + metric table, with a one-line note
/// when the obs layer is compiled out.
void print_report(std::FILE* out, const Trace& trace,
                  const MetricsSnapshot& snapshot);

/// Write trace JSON to `path` ("-" or empty writes nothing). Returns false
/// when the file cannot be written; on failure `error` (when non-null)
/// receives a message naming the path and the errno cause. The obs layer
/// sits below common/status.h, so callers that want a typed error wrap the
/// message themselves (see bench_util.h).
bool write_trace_file(const std::string& path, const Trace& trace,
                      std::string* error);

/// Convenience overload: failures print to stderr instead.
bool write_trace_file(const std::string& path, const Trace& trace);

}  // namespace rfly::obs
