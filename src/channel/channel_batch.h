// Batched point-to-point channel geometry over SoA waypoint lanes: the
// multipath enumeration of Environment::paths_between, restructured for one
// fixed target against a whole flight of source points (the measure plane's
// relay→tag link). Everything that depends only on (target, obstacle) is
// hoisted out of the per-waypoint loop:
//
//   - the target's image across each reflector (the image-source method is
//     symmetric: |image(a)→b| = |a→image(b)|, and both segments cross the
//     reflector at the same specular point, so one reflection of the fixed
//     target replaces a per-waypoint reflection of the moving relay);
//   - each obstacle's linear transmission/reflection amplitude factors
//     (db_to_amplitude of the material losses, folded multiplicatively
//     instead of summing dB and exponentiating per path).
//
// Output is a flat SoA path list the forward kernels consume: per-waypoint
// direct-path amplitude products (direct *distances* come from the kernels'
// vectorized `distances` op) plus offset-segmented reflection paths with
// precomputed distances and amplitudes. Used by the fast measure plane
// only — mathematically equivalent to paths_between + path_coefficient, not
// bit-identical (tolerance-pinned by tests/test_measure_plane.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "channel/environment.h"

namespace rfly::channel {

/// Flat multipath geometry for one target against `count` waypoints.
/// Buffers are reused across calls (clear + refill, no reallocation in
/// steady state) — keep one instance per worker.
struct BatchedPaths {
  /// Per-waypoint direct-path linear amplitude product: antenna gains ×
  /// the transmission factor of every obstacle the direct segment crosses.
  /// Length `count`.
  std::vector<double> direct_amp;
  /// First-order reflection paths, flattened: total (unfolded) path
  /// distance, clamped at the propagation model's 1 cm floor, and the
  /// linear amplitude product (antenna gains × reflection factor ×
  /// per-leg obstructions by other obstacles).
  std::vector<double> refl_d;
  std::vector<double> refl_amp;
  /// Waypoint w's reflection paths are [offsets[w], offsets[w+1]).
  /// Length `count` + 1.
  std::vector<std::uint32_t> offsets;
};

/// Enumerate the multipath geometry from every waypoint (SoA positions,
/// length `count`) to `target`. `gain_amp` is the link's hoisted linear
/// antenna-gain product db_to_amplitude(tx_gain + rx_gain).
void batch_link_paths(const Environment& env, const double* px,
                      const double* py, const double* pz, std::size_t count,
                      const Vec3& target, double gain_amp, BatchedPaths& out);

}  // namespace rfly::channel
