// Closed-form link-budget relations from Section 4.1 of the paper:
// the relay stays stable only while reader->relay path loss exceeds the
// relay's residual self-interference gain, i.e. isolation I bounds range R by
//   I > 20*log10(4*pi*R/lambda)   (Eq. 3)
//   R/lambda < 10^{I/20} / (4*pi) (Eq. 4)
#pragma once

namespace rfly::channel {

/// Maximum stable reader-relay range for a given isolation (Eq. 4).
double max_relay_range_m(double isolation_db, double f_hz);

/// Isolation needed to sustain a given reader-relay range (Eq. 3, equality).
double required_isolation_db(double range_m, double f_hz);

/// Maximum reader->tag distance at which a *direct* (relay-less) link can
/// still power a passive tag: free-space range at which received power
/// equals the tag sensitivity.
double direct_powering_range_m(double reader_eirp_dbm, double tag_gain_dbi,
                               double tag_sensitivity_dbm, double f_hz);

}  // namespace rfly::channel
