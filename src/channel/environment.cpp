#include "channel/environment.h"

#include <cmath>

namespace rfly::channel {

Material drywall() { return {"drywall", 3.0, 10.0}; }
Material concrete() { return {"concrete", 12.0, 6.0}; }
Material steel_shelf() { return {"steel_shelf", 30.0, 6.0}; }
Material glass() { return {"glass", 2.0, 8.0}; }

bool obstacle_blocks(const Obstacle& obstacle, const Vec3& a, const Vec3& b) {
  const Vec2 a2 = xy(a);
  const Vec2 b2 = xy(b);
  if (!segments_intersect(a2, b2, obstacle.footprint)) return false;
  const auto crossing = segment_line_intersection(a2, b2, obstacle.footprint);
  if (!crossing) return true;  // numerically degenerate: be conservative
  const double seg_len = distance2(a2, b2);
  const double t = seg_len > 0.0 ? distance2(a2, *crossing) / seg_len : 0.0;
  const double z_at_crossing = a.z + t * (b.z - a.z);
  return z_at_crossing <= obstacle.height_m;
}

double Environment::obstruction_loss_db(const Vec3& a, const Vec3& b) const {
  double loss = 0.0;
  for (const auto& obstacle : obstacles_) {
    if (obstacle_blocks(obstacle, a, b)) {
      loss += obstacle.material.transmission_loss_db;
    }
  }
  return loss;
}

std::vector<Path> Environment::paths_between(const Vec3& a, const Vec3& b) const {
  std::vector<Path> paths;

  const double dz = a.z - b.z;
  const Vec2 a2 = xy(a);
  const Vec2 b2 = xy(b);

  // Direct path.
  {
    Path direct;
    const double planar = distance2(a2, b2);
    direct.distance_m = std::sqrt(planar * planar + dz * dz);
    direct.extra_loss_db = obstruction_loss_db(a, b);
    direct.is_direct = true;
    paths.push_back(direct);
  }

  // First-order specular reflections via image sources.
  for (std::size_t i = 0; i < obstacles_.size(); ++i) {
    const auto& reflector = obstacles_[i];
    const Vec2 image = reflect_across(a2, reflector.footprint);
    // The bounce point is where image->b crosses the reflector segment.
    const auto bounce = segment_line_intersection(image, b2, reflector.footprint);
    if (!bounce) continue;
    const double planar = distance2(image, b2);  // = |a->bounce| + |bounce->b|
    if (planar < 1e-6) continue;

    Path p;
    p.distance_m = std::sqrt(planar * planar + dz * dz);
    p.extra_loss_db = reflector.material.reflection_loss_db;
    p.is_direct = false;

    // Obstruction by *other* obstacles on each leg of the bounce.
    const Vec3 bounce3{bounce->x, bounce->y, (a.z + b.z) / 2.0};
    for (std::size_t j = 0; j < obstacles_.size(); ++j) {
      if (j == i) continue;
      const auto& other = obstacles_[j];
      if (obstacle_blocks(other, a, bounce3)) {
        p.extra_loss_db += other.material.transmission_loss_db;
      }
      if (obstacle_blocks(other, bounce3, b)) {
        p.extra_loss_db += other.material.transmission_loss_db;
      }
    }
    paths.push_back(p);
  }
  return paths;
}

Environment empty_environment() { return Environment{}; }

Environment warehouse_environment(double width_m, double height_m, int shelf_rows) {
  Environment env;
  const Material wall = concrete();
  env.add_obstacle({{{0.0, 0.0}, {width_m, 0.0}}, wall});
  env.add_obstacle({{{width_m, 0.0}, {width_m, height_m}}, wall});
  env.add_obstacle({{{width_m, height_m}, {0.0, height_m}}, wall});
  env.add_obstacle({{{0.0, height_m}, {0.0, 0.0}}, wall});

  // Shelf rows: steel segments spanning 80% of the width, evenly spaced,
  // 2.5 m tall (paths can clear them from above).
  const Material shelf = steel_shelf();
  for (int r = 1; r <= shelf_rows; ++r) {
    const double y = height_m * static_cast<double>(r) /
                     static_cast<double>(shelf_rows + 1);
    env.add_obstacle({{{0.1 * width_m, y}, {0.9 * width_m, y}}, shelf, 2.5});
  }
  return env;
}

}  // namespace rfly::channel
