#include "channel/channel_batch.h"

#include <cmath>

#include "common/units.h"

namespace rfly::channel {

namespace {

/// Near-field floor of propagation_coefficient (path_loss.cpp): distances
/// fed to the phasor kernels must carry the same clamp the scalar model
/// applies per path.
constexpr double kMinDistanceM = 0.01;

/// Per-(target, obstacle) hoisted state.
struct ObstacleHoist {
  Vec2 image;        // target mirrored across the reflector line
  double refl_amp;   // gain_amp * db_to_amplitude(-reflection_loss_db)
  double trans_amp;  // db_to_amplitude(-transmission_loss_db)
};

}  // namespace

void batch_link_paths(const Environment& env, const double* px,
                      const double* py, const double* pz, std::size_t count,
                      const Vec3& target, double gain_amp, BatchedPaths& out) {
  const auto& obstacles = env.obstacles();
  out.direct_amp.assign(count, gain_amp);
  out.refl_d.clear();
  out.refl_amp.clear();
  out.offsets.assign(count + 1, 0);

  const Vec2 t2 = xy(target);
  std::vector<ObstacleHoist> hoists(obstacles.size());
  for (std::size_t o = 0; o < obstacles.size(); ++o) {
    hoists[o].image = reflect_across(t2, obstacles[o].footprint);
    hoists[o].refl_amp =
        gain_amp * db_to_amplitude(-obstacles[o].material.reflection_loss_db);
    hoists[o].trans_amp =
        db_to_amplitude(-obstacles[o].material.transmission_loss_db);
  }
  out.refl_d.reserve(count * obstacles.size());
  out.refl_amp.reserve(count * obstacles.size());

  for (std::size_t w = 0; w < count; ++w) {
    const Vec3 a{px[w], py[w], pz[w]};
    const Vec2 a2 = xy(a);
    const double dz = a.z - target.z;

    // Direct path: amplitude only — the vectorized `distances` kernel op
    // supplies the clamped direct distances.
    double damp = gain_amp;
    for (std::size_t o = 0; o < obstacles.size(); ++o) {
      if (obstacle_blocks(obstacles[o], a, target)) {
        damp *= hoists[o].trans_amp;
      }
    }
    out.direct_amp[w] = damp;

    // First-order specular reflections: same geometry as paths_between,
    // with the image taken on the fixed target side (symmetric).
    for (std::size_t o = 0; o < obstacles.size(); ++o) {
      const auto& reflector = obstacles[o];
      const auto bounce =
          segment_line_intersection(a2, hoists[o].image, reflector.footprint);
      if (!bounce) continue;
      const double planar = distance2(a2, hoists[o].image);
      if (planar < 1e-6) continue;

      double d = std::sqrt(planar * planar + dz * dz);
      if (d < kMinDistanceM) d = kMinDistanceM;
      double amp = hoists[o].refl_amp;
      const Vec3 bounce3{bounce->x, bounce->y, (a.z + target.z) / 2.0};
      for (std::size_t j = 0; j < obstacles.size(); ++j) {
        if (j == o) continue;
        const auto& other = obstacles[j];
        if (obstacle_blocks(other, a, bounce3)) amp *= hoists[j].trans_amp;
        if (obstacle_blocks(other, bounce3, target)) amp *= hoists[j].trans_amp;
      }
      out.refl_d.push_back(d);
      out.refl_amp.push_back(amp);
    }
    out.offsets[w + 1] = static_cast<std::uint32_t>(out.refl_d.size());
  }
}

}  // namespace rfly::channel
