#include "channel/link_budget.h"

#include <cmath>

#include "channel/path_loss.h"
#include "common/constants.h"

namespace rfly::channel {

double max_relay_range_m(double isolation_db, double f_hz) {
  return wavelength(f_hz) * std::pow(10.0, isolation_db / 20.0) / (4.0 * kPi);
}

double required_isolation_db(double range_m, double f_hz) {
  return free_space_path_loss_db(range_m, f_hz);
}

double direct_powering_range_m(double reader_eirp_dbm, double tag_gain_dbi,
                               double tag_sensitivity_dbm, double f_hz) {
  return range_for_received_power(reader_eirp_dbm, 0.0, tag_gain_dbi,
                                  tag_sensitivity_dbm, f_hz);
}

}  // namespace rfly::channel
