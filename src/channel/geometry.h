// Planar geometry for the warehouse environment model. Positions are 3D so
// drone altitude is representable, but walls/reflectors are vertical planes
// described by their 2D footprint segments (adequate for the paper's 2D
// localization experiments).
#pragma once

#include <optional>

namespace rfly::channel {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const;
  double distance_to(const Vec3& o) const;
};

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// 2D line segment (a wall or shelf footprint in plan view).
struct Segment2 {
  Vec2 a;
  Vec2 b;
};

/// Do the open segments p1->p2 and s.a->s.b intersect? Touching exactly at
/// an endpoint does not count (so a path grazing a wall corner passes).
bool segments_intersect(const Vec2& p1, const Vec2& p2, const Segment2& s);

/// Mirror `p` across the infinite line through `s` (image-source method).
Vec2 reflect_across(const Vec2& p, const Segment2& s);

/// Point where segment p1->p2 crosses the line through `s`, if the crossing
/// parameter lies within both the segment and `s`.
std::optional<Vec2> segment_line_intersection(const Vec2& p1, const Vec2& p2,
                                              const Segment2& s);

inline Vec2 xy(const Vec3& v) { return {v.x, v.y}; }

double distance2(const Vec2& a, const Vec2& b);

}  // namespace rfly::channel
