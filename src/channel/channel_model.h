// Complex channel synthesis from propagation paths (Eq. 7-9 of the paper)
// and application of a channel to a complex-baseband waveform.
//
// At the simulation sample rate (4 MS/s) one sample spans 75 m of
// propagation, so indoor excess path delays are deeply sub-sample; the
// channel therefore acts on a waveform as multiplication by the summed
// complex path coefficients, while the *phase* of each path keeps full
// carrier-wavelength resolution (that phase is what SAR localization uses).
#pragma once

#include <vector>

#include "channel/environment.h"
#include "channel/path_loss.h"
#include "signal/waveform.h"

namespace rfly::channel {

/// Antenna pair description for a link.
struct LinkGains {
  double tx_gain_dbi = 0.0;
  double rx_gain_dbi = 0.0;
};

/// Complex channel of a single path at carrier `f_hz`:
/// free-space coefficient x extra loss (obstructions, reflections).
cdouble path_coefficient(const Path& path, double f_hz, const LinkGains& gains = {});

/// Total channel: linear superposition over all paths (Eq. 8 inner sums).
cdouble channel_coefficient(const std::vector<Path>& paths, double f_hz,
                            const LinkGains& gains = {});

/// Channel between two points in an environment at carrier `f_hz`.
cdouble point_to_point_channel(const Environment& env, const Vec3& a, const Vec3& b,
                               double f_hz, const LinkGains& gains = {});

/// Apply a channel coefficient to a waveform (out = h * in).
signal::Waveform apply_channel(const signal::Waveform& in, cdouble h);

/// Convenience: propagate a waveform from `a` to `b` through `env`.
signal::Waveform propagate(const signal::Waveform& in, const Environment& env,
                           const Vec3& a, const Vec3& b, double f_hz,
                           const LinkGains& gains = {});

}  // namespace rfly::channel
