// Warehouse environment model: walls and shelves as 2D segments with
// materials. Produces the set of propagation paths between two points —
// the direct path (attenuated by every obstacle it crosses) plus first-order
// specular reflections via the image-source method. This is the multipath
// structure of paper Fig. 5 / Eq. 8.
#pragma once

#include <string>
#include <vector>

#include "channel/geometry.h"

namespace rfly::channel {

/// Obstacle material; numbers are one-pass transmission loss and specular
/// reflection loss at ~915 MHz (typical published values, not tuned).
struct Material {
  std::string name;
  double transmission_loss_db = 6.0;  // loss when a path crosses the obstacle
  double reflection_loss_db = 6.0;    // loss on specular bounce
};

Material drywall();       // 3 dB through, 10 dB bounce
Material concrete();      // 12 dB through, 6 dB bounce
Material steel_shelf();   // 30 dB through (effectively blocks), 6 dB bounce (loaded shelves scatter diffusely)
Material glass();         // 2 dB through, 8 dB bounce

struct Obstacle {
  Segment2 footprint;
  Material material;
  /// Obstacle top [m]; a path whose interpolated height at the crossing
  /// point exceeds this clears the obstacle (e.g. a reader mounted high
  /// shooting over shelf rows). Walls default to effectively unbounded.
  double height_m = 1e9;
};

/// One propagation path between two points.
struct Path {
  double distance_m = 0.0;
  double extra_loss_db = 0.0;  // obstruction + reflection losses along the way
  bool is_direct = false;
};

class Environment {
 public:
  Environment() = default;

  void add_obstacle(Obstacle obstacle) { obstacles_.push_back(std::move(obstacle)); }
  const std::vector<Obstacle>& obstacles() const { return obstacles_; }

  /// All propagation paths from `a` to `b`: the direct path plus one
  /// first-order reflection per obstacle with a valid specular geometry.
  /// Positions are 3D; obstacle interaction is evaluated in plan view while
  /// distances keep the height difference.
  std::vector<Path> paths_between(const Vec3& a, const Vec3& b) const;

  /// Transmission loss accumulated by the straight segment a->b (dB).
  double obstruction_loss_db(const Vec3& a, const Vec3& b) const;

 private:
  std::vector<Obstacle> obstacles_;
};

/// Does the 3D segment a->b pass through the (vertical, height-limited)
/// obstacle? Plan-view crossing plus a height check at the crossing point;
/// numerically degenerate crossings count as blocked (conservative). This
/// is the primitive obstruction_loss_db and paths_between are built from,
/// exposed for the batched measure-stage geometry (channel_batch.h), whose
/// per-leg reflection checks must exclude the reflecting obstacle itself.
bool obstacle_blocks(const Obstacle& obstacle, const Vec3& a, const Vec3& b);

/// Convenience builders used by tests, examples, and benches.
Environment empty_environment();

/// Rectangular warehouse: four concrete outer walls (w x h meters, origin at
/// (0,0)) and `shelf_rows` steel shelf rows running parallel to the x axis.
Environment warehouse_environment(double width_m, double height_m, int shelf_rows);

}  // namespace rfly::channel
