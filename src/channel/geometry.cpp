#include "channel/geometry.h"

#include <cmath>

namespace rfly::channel {

double Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }

double Vec3::distance_to(const Vec3& o) const { return (*this - o).norm(); }

double distance2(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

namespace {

double cross(const Vec2& o, const Vec2& a, const Vec2& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

}  // namespace

bool segments_intersect(const Vec2& p1, const Vec2& p2, const Segment2& s) {
  const double d1 = cross(s.a, s.b, p1);
  const double d2 = cross(s.a, s.b, p2);
  const double d3 = cross(p1, p2, s.a);
  const double d4 = cross(p1, p2, s.b);
  // Strict sign changes only: endpoint touches do not block.
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

Vec2 reflect_across(const Vec2& p, const Segment2& s) {
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq == 0.0) return p;
  // Project p onto the line, then mirror.
  const double t = ((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len_sq;
  const Vec2 foot{s.a.x + t * dx, s.a.y + t * dy};
  return {2.0 * foot.x - p.x, 2.0 * foot.y - p.y};
}

std::optional<Vec2> segment_line_intersection(const Vec2& p1, const Vec2& p2,
                                              const Segment2& s) {
  const double rx = p2.x - p1.x;
  const double ry = p2.y - p1.y;
  const double sx = s.b.x - s.a.x;
  const double sy = s.b.y - s.a.y;
  const double denom = rx * sy - ry * sx;
  if (std::abs(denom) < 1e-15) return std::nullopt;  // parallel
  const double t = ((s.a.x - p1.x) * sy - (s.a.y - p1.y) * sx) / denom;
  const double u = ((s.a.x - p1.x) * ry - (s.a.y - p1.y) * rx) / denom;
  if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) return std::nullopt;
  return Vec2{p1.x + t * rx, p1.y + t * ry};
}

}  // namespace rfly::channel
