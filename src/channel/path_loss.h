// Free-space propagation. Eq. 3 of the paper bounds relay range by isolation
// through exactly this path-loss expression, so the same function backs the
// link-budget analysis bench and the waveform-level channel.
#pragma once

#include "common/math_util.h"

namespace rfly::channel {

/// Free-space path loss in dB at distance `d_m` and frequency `f_hz`:
/// 20*log10(4*pi*d/lambda). d is clamped below at 1 cm to keep the
/// near-field out of the model.
double free_space_path_loss_db(double d_m, double f_hz);

/// One-way complex field coefficient for a path of length `d_m`:
/// amplitude = lambda / (4*pi*d) (isotropic antennas), phase = -2*pi*d/lambda.
cdouble propagation_coefficient(double d_m, double f_hz);

/// Received power (dBm) across a free-space link.
double received_power_dbm(double tx_power_dbm, double tx_gain_dbi, double rx_gain_dbi,
                          double d_m, double f_hz);

/// Distance at which a free-space link delivers `rx_power_dbm`.
double range_for_received_power(double tx_power_dbm, double tx_gain_dbi,
                                double rx_gain_dbi, double rx_power_dbm, double f_hz);

}  // namespace rfly::channel
