#include "channel/path_loss.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/units.h"

namespace rfly::channel {

namespace {
constexpr double kMinDistanceM = 0.01;
}

double free_space_path_loss_db(double d_m, double f_hz) {
  const double d = std::max(d_m, kMinDistanceM);
  return 20.0 * std::log10(4.0 * kPi * d / wavelength(f_hz));
}

cdouble propagation_coefficient(double d_m, double f_hz) {
  const double d = std::max(d_m, kMinDistanceM);
  const double lambda = wavelength(f_hz);
  const double amplitude = lambda / (4.0 * kPi * d);
  const double phase = -kTwoPi * d / lambda;
  return amplitude * cis(phase);
}

double received_power_dbm(double tx_power_dbm, double tx_gain_dbi, double rx_gain_dbi,
                          double d_m, double f_hz) {
  return tx_power_dbm + tx_gain_dbi + rx_gain_dbi - free_space_path_loss_db(d_m, f_hz);
}

double range_for_received_power(double tx_power_dbm, double tx_gain_dbi,
                                double rx_gain_dbi, double rx_power_dbm, double f_hz) {
  const double budget_db = tx_power_dbm + tx_gain_dbi + rx_gain_dbi - rx_power_dbm;
  // Invert FSPL: d = lambda/(4*pi) * 10^{L/20}.
  return wavelength(f_hz) / (4.0 * kPi) * std::pow(10.0, budget_db / 20.0);
}

}  // namespace rfly::channel
