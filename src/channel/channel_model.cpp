#include "channel/channel_model.h"

#include "common/units.h"

namespace rfly::channel {

cdouble path_coefficient(const Path& path, double f_hz, const LinkGains& gains) {
  const cdouble base = propagation_coefficient(path.distance_m, f_hz);
  const double gain_db = gains.tx_gain_dbi + gains.rx_gain_dbi - path.extra_loss_db;
  return base * db_to_amplitude(gain_db);
}

cdouble channel_coefficient(const std::vector<Path>& paths, double f_hz,
                            const LinkGains& gains) {
  cdouble h{0.0, 0.0};
  for (const auto& p : paths) h += path_coefficient(p, f_hz, gains);
  return h;
}

cdouble point_to_point_channel(const Environment& env, const Vec3& a, const Vec3& b,
                               double f_hz, const LinkGains& gains) {
  return channel_coefficient(env.paths_between(a, b), f_hz, gains);
}

signal::Waveform apply_channel(const signal::Waveform& in, cdouble h) {
  signal::Waveform out = in;
  out.scale(h);
  return out;
}

signal::Waveform propagate(const signal::Waveform& in, const Environment& env,
                           const Vec3& a, const Vec3& b, double f_hz,
                           const LinkGains& gains) {
  return apply_channel(in, point_to_point_channel(env, a, b, f_hz, gains));
}

}  // namespace rfly::channel
