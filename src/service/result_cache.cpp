#include "service/result_cache.h"

#include <algorithm>

#include "common/digest.h"

namespace rfly::service {

std::uint64_t ResultCache::key_digest(const std::string& text,
                                      std::uint64_t seed) {
  // Same construction the batch runner uses for its (scenario digest, seed)
  // dedup: seed folded first so sweeps over one scenario spread across the
  // table.
  return digest_string(digest_word(0x7273'6c74'6361'6368ull, seed), text);
}

bool ResultCache::lookup(const std::string& scenario_text, std::uint64_t seed,
                         std::string& out) {
  const std::uint64_t digest = key_digest(scenario_text, seed);
  std::lock_guard<std::mutex> lock(mu_);
  auto bucket = index_.find(digest);
  if (bucket != index_.end()) {
    for (std::size_t id : bucket->second) {
      if (id < evicted_front_) continue;  // stale: entry already evicted
      const Entry& entry = entries_[id - evicted_front_];
      // Digests are hints; the full (text, seed) compare is the contract.
      if (entry.seed == seed && entry.text == scenario_text) {
        out = entry.bytes;
        ++hits_;
        return true;
      }
    }
  }
  ++misses_;
  return false;
}

void ResultCache::insert(const std::string& scenario_text, std::uint64_t seed,
                         std::string result_bytes) {
  if (capacity_ == 0) return;
  const std::uint64_t digest = key_digest(scenario_text, seed);
  std::lock_guard<std::mutex> lock(mu_);
  auto& bucket = index_[digest];
  for (std::size_t id : bucket) {
    if (id < evicted_front_) continue;
    const Entry& entry = entries_[id - evicted_front_];
    if (entry.seed == seed && entry.text == scenario_text) {
      return;  // racing executors produced the same bits; first one wins
    }
  }
  bucket.push_back(evicted_front_ + entries_.size());
  entries_.push_back({scenario_text, seed, std::move(result_bytes)});
  while (entries_.size() > capacity_) {
    const Entry& victim = entries_.front();
    const std::uint64_t victim_digest = key_digest(victim.text, victim.seed);
    auto it = index_.find(victim_digest);
    if (it != index_.end()) {
      auto& ids = it->second;
      ids.erase(std::remove_if(ids.begin(), ids.end(),
                               [&](std::size_t id) {
                                 return id <= evicted_front_;
                               }),
                ids.end());
      if (ids.empty()) index_.erase(it);
    }
    entries_.pop_front();
    ++evicted_front_;
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {hits_, misses_, evictions_, entries_.size()};
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  evicted_front_ += entries_.size();
  entries_.clear();
  index_.clear();
}

}  // namespace rfly::service
