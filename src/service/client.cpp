#include "service/client.h"

#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/socket_io.h"

namespace rfly::service {

Expected<Client> Client::connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status{StatusCode::kIoError,
                  std::string("socket(): ") + std::strerror(errno)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const Status status{StatusCode::kIoError,
                        "connect(127.0.0.1:" + std::to_string(port) +
                            "): " + std::strerror(errno)};
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      last_retry_after_ms_(other.last_retry_after_ms_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    last_retry_after_ms_ = other.last_retry_after_ms_;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Expected<std::string> Client::request(MsgType type, std::string payload) {
  last_retry_after_ms_ = 0;
  if (fd_ < 0) {
    return Status{StatusCode::kIoError, "client not connected"};
  }
  if (!send_frame(fd_, type, std::move(payload))) {
    return Status{StatusCode::kIoError,
                  std::string(msg_type_name(type)) + ": send failed"};
  }
  auto reply = recv_frame(fd_);
  if (!reply) {
    Status status = reply.status();
    status.add_context(std::string(msg_type_name(type)) + " reply");
    return status;
  }
  if (reply->header.type == MsgType::kAck) {
    return std::move(reply->payload);
  }
  if (reply->header.type == MsgType::kError) {
    WireReader r(reply->payload);
    WireError error;
    if (!decode_error(r, error) || !r.exhausted()) {
      return Status{StatusCode::kParseError,
                    std::string(msg_type_name(type)) +
                        ": undecodable ERROR reply"};
    }
    last_retry_after_ms_ = error.retry_after_ms;
    return Status{error.code, error.message};
  }
  return Status{StatusCode::kParseError,
                std::string(msg_type_name(type)) + ": unexpected " +
                    msg_type_name(reply->header.type) + " reply"};
}

Expected<Client::SubmitAck> Client::submit(const std::string& scenario_text,
                                           std::uint64_t seed) {
  WireWriter w;
  w.str(scenario_text);
  w.u64(seed);
  auto reply = request(MsgType::kSubmit, w.take());
  if (!reply) return reply.status();
  WireReader r(*reply);
  SubmitAck ack;
  std::uint8_t cached = 0;
  if (!r.u64(ack.job_id) || !r.u8(cached) || !r.exhausted()) {
    return Status{StatusCode::kParseError, "malformed SUBMIT ack"};
  }
  ack.cached = cached != 0;
  return ack;
}

Expected<Client::JobStatus> Client::status(std::uint64_t job_id) {
  WireWriter w;
  w.u64(job_id);
  auto reply = request(MsgType::kStatus, w.take());
  if (!reply) return reply.status();
  WireReader r(*reply);
  JobStatus out;
  std::uint8_t state = 0;
  std::uint8_t cached = 0;
  if (!r.u8(state) || !r.u8(cached) || !r.u64(out.queue_depth) ||
      !r.exhausted() ||
      state > static_cast<std::uint8_t>(JobState::kCancelled)) {
    return Status{StatusCode::kParseError, "malformed STATUS ack"};
  }
  out.state = static_cast<JobState>(state);
  out.cached = cached != 0;
  return out;
}

Expected<std::string> Client::result_bytes(std::uint64_t job_id, bool wait) {
  WireWriter w;
  w.u64(job_id);
  w.u8(wait ? 1 : 0);
  return request(MsgType::kResult, w.take());
}

Expected<sim::BatchResult> Client::result(std::uint64_t job_id, bool wait) {
  auto bytes = result_bytes(job_id, wait);
  if (!bytes) return bytes.status();
  WireReader r(*bytes);
  sim::BatchResult result;
  if (!decode_batch_result(r, result) || !r.exhausted()) {
    return Status{StatusCode::kParseError, "malformed RESULT payload"};
  }
  return result;
}

Expected<Client::CancelAck> Client::cancel(std::uint64_t job_id) {
  WireWriter w;
  w.u64(job_id);
  auto reply = request(MsgType::kCancel, w.take());
  if (!reply) return reply.status();
  WireReader r(*reply);
  std::uint8_t removed = 0;
  std::uint8_t state = 0;
  if (!r.u8(removed) || !r.u8(state) || !r.exhausted() ||
      state > static_cast<std::uint8_t>(JobState::kCancelled)) {
    return Status{StatusCode::kParseError, "malformed CANCEL ack"};
  }
  CancelAck ack;
  ack.removed = removed != 0;
  ack.state = static_cast<JobState>(state);
  return ack;
}

Expected<ServiceStats> Client::stats() {
  auto reply = request(MsgType::kStats, {});
  if (!reply) return reply.status();
  WireReader r(*reply);
  ServiceStats stats;
  if (!decode_stats(r, stats) || !r.exhausted()) {
    return Status{StatusCode::kParseError, "malformed STATS ack"};
  }
  return stats;
}

Status Client::shutdown(bool drain) {
  WireWriter w;
  w.u8(drain ? 1 : 0);
  auto reply = request(MsgType::kShutdown, w.take());
  if (!reply) return reply.status();
  if (!reply->empty()) {
    return Status{StatusCode::kParseError, "SHUTDOWN ack carries payload"};
  }
  return Status::ok();
}

Expected<sim::BatchResult> Client::run(const std::string& scenario_text,
                                       std::uint64_t seed) {
  auto ack = submit(scenario_text, seed);
  if (!ack) return ack.status();
  return result(ack->job_id, /*wait=*/true);
}

}  // namespace rfly::service
