#include "service/wire.h"

#include "common/digest.h"

namespace rfly::service {

namespace {

/// Highest StatusCode the protocol knows; a decoded code beyond this is a
/// framing error, not a new enumerator.
constexpr std::uint8_t kMaxStatusCode =
    static_cast<std::uint8_t>(StatusCode::kUnavailable);

bool valid_request_type(std::uint16_t raw) {
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kSubmit:
    case MsgType::kStatus:
    case MsgType::kResult:
    case MsgType::kCancel:
    case MsgType::kStats:
    case MsgType::kShutdown:
    case MsgType::kAck:
    case MsgType::kError:
      return true;
  }
  return false;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kSubmit: return "SUBMIT";
    case MsgType::kStatus: return "STATUS";
    case MsgType::kResult: return "RESULT";
    case MsgType::kCancel: return "CANCEL";
    case MsgType::kStats: return "STATS";
    case MsgType::kShutdown: return "SHUTDOWN";
    case MsgType::kAck: return "ACK";
    case MsgType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

void encode_frame_header(const FrameHeader& header, std::uint8_t* out) {
  const std::uint16_t type = static_cast<std::uint16_t>(header.type);
  std::memcpy(out + 0, &header.magic, 4);
  std::memcpy(out + 4, &header.version, 2);
  std::memcpy(out + 6, &type, 2);
  std::memcpy(out + 8, &header.payload_len, 8);
}

Expected<FrameHeader> decode_frame_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kFrameHeaderBytes) {
    return Status{StatusCode::kParseError,
                  "truncated frame header: " + std::to_string(bytes.size()) +
                      " of " + std::to_string(kFrameHeaderBytes) + " bytes"};
  }
  FrameHeader header;
  std::uint16_t type = 0;
  std::memcpy(&header.magic, bytes.data() + 0, 4);
  std::memcpy(&header.version, bytes.data() + 4, 2);
  std::memcpy(&type, bytes.data() + 6, 2);
  std::memcpy(&header.payload_len, bytes.data() + 8, 8);
  if (header.magic != kMagic) {
    return Status{StatusCode::kParseError, "bad frame magic"};
  }
  if (header.version != kProtocolVersion) {
    return Status{StatusCode::kUnavailable,
                  "protocol version " + std::to_string(header.version) +
                      " not supported (server speaks " +
                      std::to_string(kProtocolVersion) + ")"};
  }
  if (!valid_request_type(type)) {
    return Status{StatusCode::kParseError,
                  "unknown frame type " + std::to_string(type)};
  }
  header.type = static_cast<MsgType>(type);
  if (header.payload_len > kMaxPayloadBytes) {
    // Rejected on the header alone — the payload is never read, let alone
    // allocated (tests assert this with a multi-GiB length field).
    return Status{StatusCode::kInvalidArgument,
                  "frame payload of " + std::to_string(header.payload_len) +
                      " bytes exceeds the " +
                      std::to_string(kMaxPayloadBytes) + "-byte cap"};
  }
  return header;
}

std::string encode_frame(MsgType type, std::string payload) {
  FrameHeader header;
  header.type = type;
  header.payload_len = payload.size();
  std::uint8_t raw[kFrameHeaderBytes];
  encode_frame_header(header, raw);
  std::string frame(reinterpret_cast<const char*>(raw), kFrameHeaderBytes);
  frame += payload;
  return frame;
}

// --- Status ----------------------------------------------------------------

void encode_status(WireWriter& w, const Status& status) {
  w.u8(static_cast<std::uint8_t>(status.code()));
  w.str(status.message());
  w.u32(static_cast<std::uint32_t>(status.context().size()));
  for (const auto& frame : status.context()) w.str(frame);
}

bool decode_status(WireReader& r, Status& status) {
  std::uint8_t code = 0;
  std::string message;
  std::uint32_t frames = 0;
  if (!r.u8(code) || !r.str(message) || !r.u32(frames)) return false;
  if (code > kMaxStatusCode) return false;
  std::vector<std::string> context(frames);
  for (auto& frame : context) {
    if (!r.str(frame)) return false;
  }
  if (code == 0) {
    status = Status::ok();
    return true;
  }
  status = Status{static_cast<StatusCode>(code), std::move(message)};
  // add_context prepends, so replaying the frames innermost-first rebuilds
  // the original outermost-first order.
  for (auto it = context.rbegin(); it != context.rend(); ++it) {
    status.add_context(std::move(*it));
  }
  return true;
}

// --- Error / stats -----------------------------------------------------------

void encode_error(WireWriter& w, const WireError& error) {
  w.u8(static_cast<std::uint8_t>(error.code));
  w.str(error.message);
  w.u32(error.retry_after_ms);
}

bool decode_error(WireReader& r, WireError& error) {
  std::uint8_t code = 0;
  if (!r.u8(code) || !r.str(error.message) || !r.u32(error.retry_after_ms)) {
    return false;
  }
  if (code == 0 || code > kMaxStatusCode) return false;  // ERROR is never OK
  error.code = static_cast<StatusCode>(code);
  return true;
}

void encode_stats(WireWriter& w, const ServiceStats& stats) {
  w.u64(stats.submitted);
  w.u64(stats.rejected);
  w.u64(stats.completed);
  w.u64(stats.cancelled);
  w.u64(stats.simulated);
  w.u64(stats.cache_hits);
  w.u64(stats.cache_misses);
  w.u64(stats.cache_entries);
  w.u64(stats.queue_depth);
  w.u64(stats.in_flight);
  w.u64(stats.queue_capacity);
  w.u8(stats.draining);
}

bool decode_stats(WireReader& r, ServiceStats& stats) {
  return r.u64(stats.submitted) && r.u64(stats.rejected) &&
         r.u64(stats.completed) && r.u64(stats.cancelled) &&
         r.u64(stats.simulated) && r.u64(stats.cache_hits) &&
         r.u64(stats.cache_misses) && r.u64(stats.cache_entries) &&
         r.u64(stats.queue_depth) && r.u64(stats.in_flight) &&
         r.u64(stats.queue_capacity) && r.u8(stats.draining);
}

// --- BatchResult -------------------------------------------------------------

namespace {

void encode_item(WireWriter& w, const core::ScannedItem& item) {
  for (std::uint8_t byte : item.epc) w.u8(byte);
  w.str(item.description);
  w.u8(item.discovered ? 1 : 0);
  w.u8(item.localized ? 1 : 0);
  w.f64(item.estimate.x);
  w.f64(item.estimate.y);
  w.f64(item.estimate.z);
  w.u64(item.measurements);
  encode_status(w, item.status);
  w.u32(static_cast<std::uint32_t>(item.live.size()));
  for (const auto& live : item.live) {
    w.u64(live.measurements);
    w.f64(live.x);
    w.f64(live.y);
    w.f64(live.peak_value);
    w.f64(live.confidence);
    w.f64(live.coverage);
  }
}

bool decode_item(WireReader& r, core::ScannedItem& item) {
  for (auto& byte : item.epc) {
    if (!r.u8(byte)) return false;
  }
  std::uint8_t discovered = 0, localized = 0;
  std::uint64_t measurements = 0;
  if (!r.str(item.description)) return false;
  if (!r.u8(discovered) || !r.u8(localized)) return false;
  if (!r.f64(item.estimate.x) || !r.f64(item.estimate.y) ||
      !r.f64(item.estimate.z)) {
    return false;
  }
  if (!r.u64(measurements)) return false;
  if (!decode_status(r, item.status)) return false;
  item.discovered = discovered != 0;
  item.localized = localized != 0;
  item.measurements = static_cast<std::size_t>(measurements);
  std::uint32_t live_count = 0;
  if (!r.u32(live_count)) return false;
  item.live.clear();
  for (std::uint32_t i = 0; i < live_count; ++i) {
    localize::LiveEstimate live;
    std::uint64_t m = 0;
    if (!r.u64(m) || !r.f64(live.x) || !r.f64(live.y) ||
        !r.f64(live.peak_value) || !r.f64(live.confidence) ||
        !r.f64(live.coverage)) {
      return false;
    }
    live.measurements = static_cast<std::size_t>(m);
    item.live.push_back(live);
  }
  return true;
}

}  // namespace

void encode_batch_result(WireWriter& w, const sim::BatchResult& result) {
  w.str(result.scenario_name);
  w.u64(result.seed);
  encode_status(w, result.status);

  const sim::MissionRun& run = result.run;
  w.u32(static_cast<std::uint32_t>(run.report.items.size()));
  for (const auto& item : run.report.items) encode_item(w, item);
  w.u64(run.report.discovered);
  w.u64(run.report.localized);
  w.f64(run.report.flight_length_m);

  w.u32(static_cast<std::uint32_t>(run.trace.size()));
  for (const auto& trace : run.trace) {
    w.u8(static_cast<std::uint8_t>(trace.stage));
    w.f64(trace.seconds);
    w.u64(trace.invocations);
  }
  w.f64(run.total_seconds);
  encode_status(w, run.health);
  w.f64(run.aperture_coverage);
  w.u64(run.faults.dropouts);
  w.u64(run.faults.embedded_losses);
  w.u64(run.faults.phase_bursts);
  w.u64(run.faults.cfo_measurements);
  w.u64(run.faults.wind_points);
  w.u64(run.faults.retries);
}

bool decode_batch_result(WireReader& r, sim::BatchResult& result) {
  if (!r.str(result.scenario_name) || !r.u64(result.seed)) return false;
  if (!decode_status(r, result.status)) return false;

  sim::MissionRun& run = result.run;
  std::uint32_t items = 0;
  if (!r.u32(items)) return false;
  run.report.items.clear();
  for (std::uint32_t i = 0; i < items; ++i) {
    core::ScannedItem item;
    if (!decode_item(r, item)) return false;
    run.report.items.push_back(std::move(item));
  }
  std::uint64_t discovered = 0, localized = 0;
  if (!r.u64(discovered) || !r.u64(localized) ||
      !r.f64(run.report.flight_length_m)) {
    return false;
  }
  run.report.discovered = static_cast<std::size_t>(discovered);
  run.report.localized = static_cast<std::size_t>(localized);

  std::uint32_t traces = 0;
  if (!r.u32(traces)) return false;
  run.trace.clear();
  for (std::uint32_t i = 0; i < traces; ++i) {
    sim::StageTrace trace;
    std::uint8_t stage = 0;
    std::uint64_t invocations = 0;
    if (!r.u8(stage) || !r.f64(trace.seconds) || !r.u64(invocations)) {
      return false;
    }
    if (stage >= sim::kStageCount) return false;
    trace.stage = static_cast<sim::Stage>(stage);
    trace.invocations = static_cast<std::size_t>(invocations);
    run.trace.push_back(trace);
  }
  if (!r.f64(run.total_seconds)) return false;
  if (!decode_status(r, run.health)) return false;
  if (!r.f64(run.aperture_coverage)) return false;
  return r.u64(run.faults.dropouts) && r.u64(run.faults.embedded_losses) &&
         r.u64(run.faults.phase_bursts) && r.u64(run.faults.cfo_measurements) &&
         r.u64(run.faults.wind_points) && r.u64(run.faults.retries);
}

namespace {

std::uint64_t digest_status(std::uint64_t state, const Status& status) {
  state = digest_word(state, static_cast<std::uint64_t>(status.code()));
  state = digest_string(state, status.message());
  state = digest_word(state, status.context().size());
  for (const auto& frame : status.context()) {
    state = digest_string(state, frame);
  }
  return state;
}

}  // namespace

std::uint64_t deterministic_digest(const sim::BatchResult& result) {
  std::uint64_t state = digest_word(0x7266'6c79'6473'7674ull, 0);  // tag
  state = digest_string(state, result.scenario_name);
  state = digest_word(state, result.seed);
  state = digest_status(state, result.status);

  const sim::MissionRun& run = result.run;
  state = digest_word(state, run.report.items.size());
  for (const auto& item : run.report.items) {
    state = digest_bytes(state, item.epc.data(), item.epc.size());
    state = digest_string(state, item.description);
    state = digest_word(state, (item.discovered ? 2u : 0u) |
                                   (item.localized ? 1u : 0u));
    state = digest_double(state, item.estimate.x);
    state = digest_double(state, item.estimate.y);
    state = digest_double(state, item.estimate.z);
    state = digest_word(state, item.measurements);
    state = digest_status(state, item.status);
    state = digest_word(state, item.live.size());
    for (const auto& live : item.live) {
      state = digest_word(state, live.measurements);
      state = digest_double(state, live.x);
      state = digest_double(state, live.y);
      state = digest_double(state, live.peak_value);
      state = digest_double(state, live.confidence);
      state = digest_double(state, live.coverage);
    }
  }
  state = digest_word(state, run.report.discovered);
  state = digest_word(state, run.report.localized);
  state = digest_double(state, run.report.flight_length_m);

  // Stage identities and invocation counts are deterministic; stage
  // *seconds* and total_seconds are wall clock and deliberately excluded.
  state = digest_word(state, run.trace.size());
  for (const auto& trace : run.trace) {
    state = digest_word(state, static_cast<std::uint64_t>(trace.stage));
    state = digest_word(state, trace.invocations);
  }
  state = digest_status(state, run.health);
  state = digest_double(state, run.aperture_coverage);
  state = digest_word(state, run.faults.dropouts);
  state = digest_word(state, run.faults.embedded_losses);
  state = digest_word(state, run.faults.phase_bursts);
  state = digest_word(state, run.faults.cfo_measurements);
  state = digest_word(state, run.faults.wind_points);
  return digest_word(state, run.faults.retries);
}

}  // namespace rfly::service
