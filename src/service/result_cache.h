// Content-addressed mission result cache: the daemon-side counterpart of
// the batch runner's (scenario digest, seed) dedup. A mission outcome is a
// pure function of (canonical scenario text, engine seed) — the repo-wide
// determinism contract — so the daemon never simulates the same mission
// twice: the first SUBMIT stores the wire-encoded BatchResult, every
// identical later SUBMIT is served those exact bytes (bit-identical by
// construction, including the original run's stage timings).
//
// Keys follow the GeometryCache discipline: the splitmix64 digest is a
// *hint*, and every hit is verified against the full (text, seed) pair
// before bytes are shared — a collision can cost a miss, never a wrong
// result. Eviction is FIFO by insertion order, deterministic for a given
// request sequence; capacity 0 disables retention entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rfly::service {

class ResultCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit ResultCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Look up the result bytes for (canonical scenario text, seed).
  /// Returns true and fills `out` on a verified hit. Thread-safe.
  bool lookup(const std::string& scenario_text, std::uint64_t seed,
              std::string& out);

  /// Insert a result. A duplicate key (two racing executors finishing the
  /// same mission) keeps the first entry — both serialized the same bits,
  /// so which one wins is unobservable. Evicts FIFO beyond capacity.
  void insert(const std::string& scenario_text, std::uint64_t seed,
              std::string result_bytes);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

  std::size_t capacity() const { return capacity_; }

  /// Drop every entry (stats survive). Tests and cold/warm benches.
  void clear();

 private:
  struct Entry {
    std::string text;  // verification key, not the digest
    std::uint64_t seed = 0;
    std::string bytes;
  };

  static std::uint64_t key_digest(const std::string& text, std::uint64_t seed);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<Entry> entries_;  // FIFO order; stable addresses not required
  /// digest -> indices into entries_ (indices shift on eviction; rebuilt
  /// lazily — see .cpp).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_;
  std::size_t evicted_front_ = 0;  // entries_ indices are offset by this
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rfly::service
