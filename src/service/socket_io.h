// Blocking loopback-socket I/O shared by the server and the client
// library: full-buffer read/write loops (EINTR-safe, short-op-safe) and
// the frame receive path — header first, validated *before* the payload
// is allocated or read, per the wire.h contract.
#pragma once

#include <cerrno>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "service/wire.h"

namespace rfly::service {

inline bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

inline bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed mid-frame
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

inline bool send_frame(int fd, MsgType type, std::string payload) {
  const std::string frame = encode_frame(type, std::move(payload));
  return write_all(fd, frame.data(), frame.size());
}

/// Receive one frame. kIoError means the stream died (clean EOF between
/// frames included); header validation errors pass through from
/// decode_frame_header. The payload buffer is sized only after the header
/// passed the kMaxPayloadBytes check.
struct RecvFrame {
  FrameHeader header;
  std::string payload;
};

inline Expected<RecvFrame> recv_frame(int fd) {
  std::uint8_t raw[kFrameHeaderBytes];
  if (!read_all(fd, raw, sizeof raw)) {
    return Status{StatusCode::kIoError, "connection closed"};
  }
  auto header = decode_frame_header({raw, sizeof raw});
  if (!header) return header.status();
  RecvFrame frame;
  frame.header = *header;
  frame.payload.resize(static_cast<std::size_t>(header->payload_len));
  if (frame.header.payload_len > 0 &&
      !read_all(fd, frame.payload.data(), frame.payload.size())) {
    return Status{StatusCode::kIoError, "connection closed mid-payload"};
  }
  return frame;
}

}  // namespace rfly::service
