// Client library for the mission service: one blocking TCP connection to
// an `rflyd` daemon, one method per protocol command. Every method sends a
// single request frame and reads the single ACK/ERROR reply the protocol
// guarantees; server-side ERRORs come back as the typed Status they carry
// (with the retry-after hint preserved via last_retry_after_ms()), so a
// caller can distinguish backpressure (kUnavailable — back off and retry)
// from its own mistakes (kParseError, kNotFound) without string matching.
#pragma once

#include <cstdint>
#include <string>

#include "service/wire.h"
#include "sim/batch.h"

namespace rfly::service {

class Client {
 public:
  /// Connect to an rflyd instance on 127.0.0.1. kIoError on refusal.
  static Expected<Client> connect(std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  struct SubmitAck {
    std::uint64_t job_id = 0;
    /// Served straight from the daemon's result cache: the job was born
    /// terminal and never consumed a queue slot or a simulation.
    bool cached = false;
  };

  /// Submit one mission (scenario text + engine seed). kUnavailable means
  /// backpressure or drain — consult last_retry_after_ms() and retry.
  Expected<SubmitAck> submit(const std::string& scenario_text,
                             std::uint64_t seed);

  struct JobStatus {
    JobState state = JobState::kQueued;
    bool cached = false;
    std::uint64_t queue_depth = 0;  // daemon-wide, at reply time
  };
  Expected<JobStatus> status(std::uint64_t job_id);

  /// Fetch a finished job's result. wait=true blocks server-side until the
  /// job is terminal; wait=false returns kUnavailable while it is still
  /// queued or running.
  Expected<sim::BatchResult> result(std::uint64_t job_id, bool wait = true);

  /// The raw encoded result payload — what the bit-identity tests compare:
  /// a warm-cache replay returns byte-for-byte what the cold run stored.
  Expected<std::string> result_bytes(std::uint64_t job_id, bool wait = true);

  struct CancelAck {
    bool removed = false;  // plucked from the queue before it ran
    JobState state = JobState::kQueued;  // state after the cancel attempt
  };
  Expected<CancelAck> cancel(std::uint64_t job_id);

  Expected<ServiceStats> stats();

  /// Ask the daemon to stop (drain=true finishes the backlog first).
  Status shutdown(bool drain = true);

  /// Convenience: submit and block for the result in one call.
  Expected<sim::BatchResult> run(const std::string& scenario_text,
                                 std::uint64_t seed);

  /// Retry hint from the most recent ERROR reply (0 = none given).
  std::uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Send `type`+payload, read the one reply. ACK -> its payload; ERROR ->
  /// the carried Status (hint stashed); anything else -> kParseError.
  Expected<std::string> request(MsgType type, std::string payload);

  int fd_ = -1;
  std::uint32_t last_retry_after_ms_ = 0;
};

}  // namespace rfly::service
