#include "service/server.h"

#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/socket_io.h"
#include "sim/scenario.h"

namespace rfly::service {

namespace {

using Clock = std::chrono::steady_clock;

double now_seconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

// service.* telemetry. Counters mirror the ServiceStats the STATS command
// returns; the gauges track instantaneous queue state.
obs::Counter& submitted_counter() {
  static obs::Counter& c = obs::counter("service.submitted");
  return c;
}
obs::Counter& rejected_counter() {
  static obs::Counter& c = obs::counter("service.rejected");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter& c = obs::counter("service.completed");
  return c;
}
obs::Counter& cancelled_counter() {
  static obs::Counter& c = obs::counter("service.cancelled");
  return c;
}
obs::Counter& simulated_counter() {
  static obs::Counter& c = obs::counter("service.simulated");
  return c;
}
obs::Counter& cache_hit_counter() {
  static obs::Counter& c = obs::counter("service.cache.hits");
  return c;
}
obs::Counter& cache_miss_counter() {
  static obs::Counter& c = obs::counter("service.cache.misses");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("service.queue_depth");
  return g;
}
obs::Gauge& in_flight_gauge() {
  static obs::Gauge& g = obs::gauge("service.jobs_in_flight");
  return g;
}
obs::Histogram& job_seconds_hist() {
  static obs::Histogram& h = obs::histogram(
      "service.job_seconds", obs::HistogramSpec::duration_seconds());
  return h;
}
obs::Histogram& queue_wait_hist() {
  static obs::Histogram& h = obs::histogram(
      "service.queue_wait_seconds", obs::HistogramSpec::duration_seconds());
  return h;
}

}  // namespace

MissionService::MissionService(ServiceConfig config)
    : config_(config), cache_(config.cache_capacity) {
  if (config_.workers == 0) config_.workers = 1;
}

MissionService::~MissionService() {
  request_shutdown(/*drain=*/false);
  wait();
}

Status MissionService::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return {StatusCode::kIoError,
            std::string("socket(): ") + std::strerror(errno)};
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const Status status{StatusCode::kIoError,
                        "bind(127.0.0.1:" + std::to_string(config_.port) +
                            "): " + std::strerror(errno)};
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status status{StatusCode::kIoError,
                        std::string("listen(): ") + std::strerror(errno)};
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return Status::ok();
}

void MissionService::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed — teardown in progress
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(conn_mu_);
    open_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void MissionService::connection_loop(int fd) {
  for (;;) {
    auto frame = recv_frame(fd);
    if (!frame) {
      // kIoError is the normal end of a connection (peer closed). A header
      // validation failure gets a typed ERROR back before the stream is
      // abandoned: after a framing violation nothing later on the stream
      // can be trusted, so one reply and close is the contract.
      if (frame.status().code() != StatusCode::kIoError) {
        send_error(fd, frame.status().code(), frame.status().message());
      }
      break;
    }
    if (!handle_frame(fd, frame->header, frame->payload)) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = open_fds_.begin(); it != open_fds_.end(); ++it) {
    if (*it == fd) {
      open_fds_.erase(it);
      break;
    }
  }
}

bool MissionService::handle_frame(int fd, const FrameHeader& header,
                                  const std::string& payload) {
  obs::Span span("service.request");
  switch (header.type) {
    case MsgType::kSubmit:
      return handle_submit(fd, payload);
    case MsgType::kStatus:
      return handle_status(fd, payload);
    case MsgType::kResult:
      return handle_result(fd, payload);
    case MsgType::kCancel:
      return handle_cancel(fd, payload);
    case MsgType::kStats:
      return handle_stats(fd);
    case MsgType::kShutdown:
      return handle_shutdown(fd, payload);
    case MsgType::kAck:
    case MsgType::kError:
      // Response types are server->client only; a client sending one is a
      // protocol violation.
      send_error(fd, StatusCode::kParseError,
                 std::string("unexpected ") + msg_type_name(header.type) +
                     " frame from client");
      return false;
  }
  send_error(fd, StatusCode::kParseError, "unknown frame type");
  return false;
}

bool MissionService::send_error(int fd, StatusCode code,
                                const std::string& message,
                                std::uint32_t retry_after_ms) {
  WireWriter w;
  encode_error(w, {code, message, retry_after_ms});
  return send_frame(fd, MsgType::kError, w.take());
}

bool MissionService::handle_submit(int fd, const std::string& payload) {
  WireReader r(payload);
  std::string text;
  std::uint64_t seed = 0;
  if (!r.str(text) || !r.u64(seed) || !r.exhausted()) {
    send_error(fd, StatusCode::kParseError, "malformed SUBMIT payload");
    return false;
  }

  // Parse + validate before any queue decision: a bad scenario is the
  // client's error, not backpressure, and must not consume a queue slot.
  auto parsed = sim::parse_scenario(text);
  if (!parsed) {
    const Status& status = parsed.status();
    send_error(fd, status.code(), status.to_string());
    return true;
  }
  // Cache key is the *canonical* serialized form, so two texts that parse
  // to the same scenario (comment/ordering differences) share one entry.
  const std::string canonical = sim::serialize(*parsed);

  bool draining = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining = draining_;
    if (draining) ++rejected_;
  }
  if (draining) {
    // Reply written outside mu_: socket writes never hold service state.
    rejected_counter().inc();
    send_error(fd, StatusCode::kUnavailable,
               "service is draining for shutdown; not accepting missions",
               config_.retry_after_ms);
    return true;
  }

  // Content-addressed fast path: a verified (canonical text, seed) hit is
  // served the stored bytes without touching the queue — repeats cost a
  // map lookup, never a simulation and never a queue slot.
  std::string cached_bytes;
  if (cache_.lookup(canonical, seed, cached_bytes)) {
    cache_hit_counter().inc();
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = next_job_id_++;
      Job job;
      job.scenario = std::move(parsed.value());
      job.canonical_text = canonical;
      job.seed = seed;
      job.state = JobState::kDone;
      job.cached = true;
      job.result_bytes = std::move(cached_bytes);
      job.submit_seconds = now_seconds();
      jobs_.emplace(id, std::move(job));
      ++submitted_;
      ++completed_;
    }
    submitted_counter().inc();
    completed_counter().inc();
    done_cv_.notify_all();
    WireWriter w;
    w.u64(id);
    w.u8(1);  // cached
    return send_frame(fd, MsgType::kAck, w.take());
  }
  cache_miss_counter().inc();

  std::uint64_t id = 0;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= config_.queue_capacity) {
      ++rejected_;
      depth = queue_.size();
      id = 0;  // sentinel: rejected below, outside the lock
    } else {
      id = next_job_id_++;
      Job job;
      job.scenario = std::move(parsed.value());
      job.canonical_text = canonical;
      job.seed = seed;
      job.state = JobState::kQueued;
      job.submit_seconds = now_seconds();
      jobs_.emplace(id, std::move(job));
      queue_.push_back(id);
      depth = queue_.size();
      ++submitted_;
    }
  }
  if (id == 0) {
    // Backpressure is a *rejection*, never a block: the client gets a typed
    // kUnavailable with a retry hint scaled by how deep the backlog is.
    rejected_counter().inc();
    const std::uint32_t hint = static_cast<std::uint32_t>(
        config_.retry_after_ms * (1 + depth / config_.workers));
    send_error(fd, StatusCode::kUnavailable,
               "job queue full (" + std::to_string(depth) + "/" +
                   std::to_string(config_.queue_capacity) +
                   "); retry after backoff",
               hint);
    return true;
  }
  submitted_counter().inc();
  queue_depth_gauge().set(static_cast<double>(depth));
  work_cv_.notify_one();

  WireWriter w;
  w.u64(id);
  w.u8(0);  // not cached; poll STATUS or block on RESULT
  return send_frame(fd, MsgType::kAck, w.take());
}

bool MissionService::handle_status(int fd, const std::string& payload) {
  WireReader r(payload);
  std::uint64_t id = 0;
  if (!r.u64(id) || !r.exhausted()) {
    send_error(fd, StatusCode::kParseError, "malformed STATUS payload");
    return false;
  }
  JobState state{};
  std::uint8_t cached = 0;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      send_error(fd, StatusCode::kNotFound,
                 "job " + std::to_string(id) + " unknown");
      return true;
    }
    state = it->second.state;
    cached = it->second.cached ? 1 : 0;
    depth = queue_.size();
  }
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(state));
  w.u8(cached);
  w.u64(depth);
  return send_frame(fd, MsgType::kAck, w.take());
}

bool MissionService::handle_result(int fd, const std::string& payload) {
  WireReader r(payload);
  std::uint64_t id = 0;
  std::uint8_t wait = 0;
  if (!r.u64(id) || !r.u8(wait) || !r.exhausted()) {
    send_error(fd, StatusCode::kParseError, "malformed RESULT payload");
    return false;
  }
  std::string bytes;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      lock.unlock();
      send_error(fd, StatusCode::kNotFound,
                 "job " + std::to_string(id) + " unknown");
      return true;
    }
    if (wait != 0) {
      // Block this connection until the job is terminal. Shutdown wakes
      // every waiter: drained jobs arrive kDone, abandoned ones kCancelled.
      done_cv_.wait(lock, [&] {
        const Job& job = jobs_.at(id);
        return job.state == JobState::kDone ||
               job.state == JobState::kCancelled;
      });
    }
    const Job& job = jobs_.at(id);
    if (job.state == JobState::kCancelled) {
      lock.unlock();
      send_error(fd, StatusCode::kUnavailable,
                 "job " + std::to_string(id) + " was cancelled");
      return true;
    }
    if (job.state != JobState::kDone) {
      lock.unlock();
      send_error(fd, StatusCode::kUnavailable,
                 "job " + std::to_string(id) + " is " +
                     job_state_name(job.state) + "; retry or pass wait=1",
                 config_.retry_after_ms);
      return true;
    }
    bytes = job.result_bytes;
  }
  return send_frame(fd, MsgType::kAck, std::move(bytes));
}

bool MissionService::handle_cancel(int fd, const std::string& payload) {
  WireReader r(payload);
  std::uint64_t id = 0;
  if (!r.u64(id) || !r.exhausted()) {
    send_error(fd, StatusCode::kParseError, "malformed CANCEL payload");
    return false;
  }
  std::uint8_t removed = 0;
  JobState state{};
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      send_error(fd, StatusCode::kNotFound,
                 "job " + std::to_string(id) + " unknown");
      return true;
    }
    if (it->second.state == JobState::kQueued) {
      for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
        if (*qit == id) {
          queue_.erase(qit);
          break;
        }
      }
      it->second.state = JobState::kCancelled;
      ++cancelled_;
      removed = 1;
    }
    state = it->second.state;
    depth = queue_.size();
  }
  if (removed != 0) {
    cancelled_counter().inc();
    queue_depth_gauge().set(static_cast<double>(depth));
    done_cv_.notify_all();
  }
  WireWriter w;
  w.u8(removed);
  w.u8(static_cast<std::uint8_t>(state));
  return send_frame(fd, MsgType::kAck, w.take());
}

bool MissionService::handle_stats(int fd) {
  WireWriter w;
  encode_stats(w, stats());
  return send_frame(fd, MsgType::kAck, w.take());
}

bool MissionService::handle_shutdown(int fd, const std::string& payload) {
  WireReader r(payload);
  std::uint8_t drain = 1;
  if (!r.u8(drain) || !r.exhausted()) {
    send_error(fd, StatusCode::kParseError, "malformed SHUTDOWN payload");
    return false;
  }
  // ACK first: once request_shutdown runs, this very connection is torn
  // down and the reply would never leave the machine.
  const bool sent = send_frame(fd, MsgType::kAck, {});
  request_shutdown(drain != 0);
  return sent;
}

void MissionService::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
    if (queue_.empty()) {
      if (draining_) return;
      continue;
    }
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    Job& job = jobs_.at(id);
    job.state = JobState::kRunning;
    ++in_flight_;
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
    in_flight_gauge().set(static_cast<double>(in_flight_));
    if constexpr (obs::kEnabled) {
      queue_wait_hist().observe(now_seconds() - job.submit_seconds);
    }
    // Copy what the simulation needs, then drop the lock for the duration
    // of the mission: SUBMIT/STATUS/STATS stay responsive while jobs run.
    const sim::BatchJob batch_job{job.scenario, job.seed};
    const std::string canonical = job.canonical_text;
    lock.unlock();

    const double start = now_seconds();
    sim::BatchRunInfo info;
    auto results = sim::run_batch(
        {batch_job},
        {config_.job_threads, sim::BatchMode::kBatched,
         localize::GeometryCache::kDefaultCapacity},
        &info);
    WireWriter w;
    encode_batch_result(w, results.front());
    std::string bytes = w.take();
    simulated_counter().inc();
    if constexpr (obs::kEnabled) {
      job_seconds_hist().observe(now_seconds() - start);
    }
    // Store before signalling. The cache takes a copy of the exact bytes
    // every later identical SUBMIT will be served — warm results are
    // bit-identical to this cold one by construction.
    cache_.insert(canonical, batch_job.seed, bytes);

    lock.lock();
    Job& done = jobs_.at(id);
    done.result_bytes = std::move(bytes);
    done.state = JobState::kDone;
    ++completed_;
    ++simulated_;
    --in_flight_;
    in_flight_gauge().set(static_cast<double>(in_flight_));
    completed_counter().inc();
    done_cv_.notify_all();
  }
}

void MissionService::request_shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && drain) return;  // idempotent
    draining_ = true;
    if (!drain) {
      // Abandon the backlog: queued jobs become kCancelled so RESULT
      // waiters get a typed answer instead of hanging. Running jobs still
      // complete — a mission pipeline is not interruptible.
      for (std::uint64_t id : queue_) {
        Job& job = jobs_.at(id);
        if (job.state == JobState::kQueued) {
          job.state = JobState::kCancelled;
          ++cancelled_;
          cancelled_counter().inc();
        }
      }
      queue_.clear();
      queue_depth_gauge().set(0.0);
    }
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
}

void MissionService::wait() {
  std::lock_guard<std::mutex> wait_serial(wait_mu_);
  if (!started_ || stopped_) return;

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return draining_; });
  }
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  // Stop intake: closing the listener pops accept() out with an error.
  ::shutdown(listen_fd_, SHUT_RDWR);
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Kick every live connection off its blocking read, then join. Handlers
  // close their own fd; shutdown() here only unblocks them.
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    connections = std::move(connections_);
    connections_.clear();
  }
  for (auto& connection : connections) connection.join();
  stopped_ = true;
}

ServiceStats MissionService::stats_locked() const {
  ServiceStats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  stats.cancelled = cancelled_;
  stats.simulated = simulated_;
  const ResultCache::Stats cache = cache_.stats();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_entries = cache.entries;
  stats.queue_depth = queue_.size();
  stats.in_flight = in_flight_;
  stats.queue_capacity = config_.queue_capacity;
  stats.draining = draining_ ? 1 : 0;
  return stats;
}

ServiceStats MissionService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_locked();
}

}  // namespace rfly::service
