// Wire protocol for the mission service (`rflyd`): length-prefixed,
// versioned, typed frames over a loopback stream socket. Modeled on
// MDP-style command/ack/error framing — every request (SUBMIT / STATUS /
// RESULT / CANCEL / STATS / SHUTDOWN) is answered by exactly one ACK or
// one typed ERROR carrying a StatusCode plus a retry-after hint.
//
// Frame layout (little-endian, loopback-only by contract):
//
//   offset  size  field
//        0     4  magic        0x52464C59 ("RFLY")
//        4     2  version      kProtocolVersion (1)
//        6     2  type         MsgType
//        8     8  payload_len  bytes following the header
//
// A receiver validates the 16-byte header *before* touching the payload:
// bad magic, unknown version, and a payload_len above kMaxPayloadBytes are
// all rejected without allocating a byte of payload — a garbage or hostile
// length can never drive an allocation (pinned by tests/test_service.cpp).
//
// Payload scalars are fixed-width little-endian; doubles travel as their
// IEEE-754 bit patterns (memcpy, never printf), so a decoded mission
// result is bit-identical to the struct the server serialized — the same
// bit-identity discipline the batch runner pins, extended across the
// socket. Strings are u32-length-prefixed bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "common/status.h"
#include "sim/batch.h"

namespace rfly::service {

inline constexpr std::uint32_t kMagic = 0x52464C59;  // "RFLY"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard ceiling on a frame payload. Large enough for any mission result
/// (a warehouse report serializes to a few KiB), small enough that a
/// corrupt or adversarial length field cannot drive a giant allocation.
inline constexpr std::uint64_t kMaxPayloadBytes = 16ull << 20;  // 16 MiB

/// Frame types. Requests are client->server; kAck/kError are the only
/// server->client types, and every request gets exactly one of them.
enum class MsgType : std::uint16_t {
  kSubmit = 1,    // scenario text + seed -> ACK{job id} | ERROR
  kStatus = 2,    // job id -> ACK{JobState, queue depth} | ERROR
  kResult = 3,    // job id + wait flag -> ACK{BatchResult} | ERROR
  kCancel = 4,    // job id -> ACK{removed flag, state} | ERROR
  kStats = 5,     // -> ACK{ServiceStats}
  kShutdown = 6,  // drain flag -> ACK (server drains, then stops)
  kAck = 100,
  kError = 101,
};

const char* msg_type_name(MsgType type);

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  MsgType type = MsgType::kError;
  std::uint64_t payload_len = 0;
};

/// Serialize a header into exactly kFrameHeaderBytes.
void encode_frame_header(const FrameHeader& header, std::uint8_t* out);

/// Validate + decode a header from exactly kFrameHeaderBytes. Errors:
/// kParseError (bad magic / truncated / unknown type), kUnavailable
/// (version mismatch — a newer client should back off, not retry),
/// kInvalidArgument (payload_len > kMaxPayloadBytes). Never allocates.
Expected<FrameHeader> decode_frame_header(std::span<const std::uint8_t> bytes);

// --- Payload encoding -----------------------------------------------------

/// Append-only payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  /// IEEE-754 bit pattern — NaN payloads and -0.0 survive the trip.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void append(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  std::string buf_;
};

/// Bounds-checked payload reader. Every getter returns false once the
/// payload is exhausted or a length prefix overruns the remaining bytes;
/// the failure is sticky (ok() stays false), so a decode function can read
/// a whole struct and check once at the end. String lengths are validated
/// against the remaining payload before any allocation.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  explicit WireReader(const std::string& bytes)
      : bytes_(reinterpret_cast<const std::uint8_t*>(bytes.data()),
               bytes.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  /// True when the payload was consumed exactly (trailing garbage is a
  /// framing error, not padding).
  bool exhausted() const { return ok_ && remaining() == 0; }

  bool u8(std::uint8_t& v) { return fixed(&v, sizeof v); }
  bool u16(std::uint16_t& v) { return fixed(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return fixed(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return fixed(&v, sizeof v); }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }
  bool str(std::string& out) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (len > remaining()) return fail();
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

 private:
  bool fixed(void* out, std::size_t size) {
    if (!ok_ || size > remaining()) return fail();
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  bool fail() {
    ok_ = false;
    return false;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Typed payload codecs ---------------------------------------------------

/// Lifecycle of a job inside the service.
enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,      // terminal; the BatchResult (which may carry a mission
                  // error Status) is available via RESULT
  kCancelled = 3, // terminal; removed from the queue before running
};

const char* job_state_name(JobState state);

/// The ERROR frame body: the typed code, the human message, and — for
/// kUnavailable — how long the client should wait before retrying
/// (0 = no hint). SUBMIT backpressure, RESULT-not-ready, and drain-mode
/// rejection all speak this shape.
struct WireError {
  StatusCode code = StatusCode::kUnavailable;
  std::string message;
  std::uint32_t retry_after_ms = 0;
};

void encode_error(WireWriter& w, const WireError& error);
bool decode_error(WireReader& r, WireError& error);

/// Counters/gauges a STATS request returns; mirrors the `service.*` obs
/// metrics so a remote client sees the same numbers `--report` prints.
struct ServiceStats {
  std::uint64_t submitted = 0;    // SUBMITs accepted (queued or cache-served)
  std::uint64_t rejected = 0;     // SUBMITs refused (backpressure / draining)
  std::uint64_t completed = 0;    // jobs reaching kDone
  std::uint64_t cancelled = 0;    // jobs cancelled while queued
  std::uint64_t simulated = 0;    // jobs that actually ran run_batch
  std::uint64_t cache_hits = 0;   // SUBMITs served from the result cache
  std::uint64_t cache_misses = 0; // SUBMITs that had to simulate
  std::uint64_t cache_entries = 0;
  std::uint64_t queue_depth = 0;  // jobs waiting right now
  std::uint64_t in_flight = 0;    // jobs executing right now
  std::uint64_t queue_capacity = 0;
  std::uint8_t draining = 0;      // shutdown requested, queue emptying
};

void encode_stats(WireWriter& w, const ServiceStats& stats);
bool decode_stats(WireReader& r, ServiceStats& stats);

/// Full bit-exact codec for a mission outcome: every field of
/// sim::BatchResult (Status chains, report items, EPCs, live-estimate
/// sequences, stage traces, fault tallies) round-trips through
/// decode(encode(r)) with identical bits — the loopback parity tests
/// compare server-returned results against direct run_batch output
/// field-for-field through this codec.
void encode_batch_result(WireWriter& w, const sim::BatchResult& result);
bool decode_batch_result(WireReader& r, sim::BatchResult& result);

void encode_status(WireWriter& w, const Status& status);
bool decode_status(WireReader& r, Status& status);

/// Digest of a result's *deterministic* content — everything except wall
/// clock (stage seconds, total_seconds). Two runs of the same (scenario,
/// seed) must agree on this digest at any thread count, whether executed
/// directly, through the daemon, or replayed from the result cache; the
/// service integration tests pin exactly that.
std::uint64_t deterministic_digest(const sim::BatchResult& result);

/// Build one complete frame (header + payload) ready to write to a socket.
std::string encode_frame(MsgType type, std::string payload);

}  // namespace rfly::service
