// `rflyd` — the long-lived mission service. Promotes the one-shot
// scenario_runner flow into a persistent daemon: clients SUBMIT missions
// (canonical scenario text + seed) over the versioned wire protocol
// (wire.h), jobs run on an async bounded queue layered over the shared
// deterministic thread pool via run_batch, and repeated submissions are
// served from the content-addressed ResultCache without re-simulating.
//
// Contracts (pinned by tests/test_service.cpp):
//   - Determinism: a result served over the socket is bit-identical (all
//     deterministic fields; wall-clock timings excluded) to a direct
//     run_batch of the same (scenario, seed) at any thread count.
//   - Backpressure: a SUBMIT that finds the queue full is *rejected* with
//     ERROR kUnavailable + a retry-after hint; the daemon never blocks the
//     connection on queue space. Cache hits bypass the queue entirely.
//   - Graceful drain: SHUTDOWN (or request_shutdown) stops intake, queued
//     and running jobs finish (drain=true) or queued jobs cancel
//     (drain=false), waiters wake, then sockets close.
//   - Observability: queue depth / jobs in flight gauges, submit/reject/
//     complete/cache counters, job + queue-wait histograms under
//     `service.*`.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/result_cache.h"
#include "service/wire.h"
#include "sim/batch.h"

namespace rfly::service {

struct ServiceConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back with
  /// port() after start()).
  std::uint16_t port = 0;
  /// Executor threads pulling jobs off the queue. Each runs one mission at
  /// a time through run_batch; results are per-job deterministic, so the
  /// worker count (like every thread knob in this repo) never changes
  /// bytes, only latency.
  unsigned workers = 1;
  /// BatchConfig::threads for each job's run_batch call (0 = hardware).
  unsigned job_threads = 0;
  /// Jobs allowed to wait in the queue; a SUBMIT beyond this is rejected
  /// with kUnavailable (backpressure), never blocked.
  std::size_t queue_capacity = 64;
  /// ResultCache retention (distinct (scenario, seed) results); 0 disables
  /// result caching so every submission simulates.
  std::size_t cache_capacity = ResultCache::kDefaultCapacity;
  /// Retry hint attached to backpressure rejections.
  std::uint32_t retry_after_ms = 50;
};

class MissionService {
 public:
  explicit MissionService(ServiceConfig config = {});
  ~MissionService();

  MissionService(const MissionService&) = delete;
  MissionService& operator=(const MissionService&) = delete;

  /// Bind 127.0.0.1, listen, spawn the acceptor and executor threads.
  /// kIoError with the errno cause when the port cannot be bound.
  Status start();

  /// The bound port (valid after a successful start()).
  std::uint16_t port() const { return port_; }

  /// Stop intake and begin teardown. drain=true lets queued jobs finish;
  /// drain=false cancels everything still queued (running jobs always
  /// complete — missions are not interruptible mid-pipeline). Idempotent;
  /// also triggered remotely by the SHUTDOWN command.
  void request_shutdown(bool drain = true);

  /// Block until the service has fully stopped: workers drained, acceptor
  /// and connection threads joined, sockets closed. Returns immediately if
  /// never started.
  void wait();

  /// Point-in-time counters (same numbers the STATS command returns).
  ServiceStats stats() const;

 private:
  struct Job {
    sim::Scenario scenario;
    std::string canonical_text;  // serialize(scenario) — the cache key
    std::uint64_t seed = 0;
    JobState state = JobState::kQueued;
    bool cached = false;         // served from ResultCache, never simulated
    std::string result_bytes;    // encoded BatchResult once kDone
    double submit_seconds = 0.0; // monotonic submit time (queue-wait probe)
  };

  void accept_loop();
  void connection_loop(int fd);
  void worker_loop();

  /// Dispatch one request frame; returns false when the connection should
  /// close (protocol violation after the error reply).
  bool handle_frame(int fd, const FrameHeader& header,
                    const std::string& payload);

  bool handle_submit(int fd, const std::string& payload);
  bool handle_status(int fd, const std::string& payload);
  bool handle_result(int fd, const std::string& payload);
  bool handle_cancel(int fd, const std::string& payload);
  bool handle_stats(int fd);
  bool handle_shutdown(int fd, const std::string& payload);

  bool send_error(int fd, StatusCode code, const std::string& message,
                  std::uint32_t retry_after_ms = 0);

  ServiceStats stats_locked() const;  // requires mu_

  ServiceConfig config_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue or drain state changed
  std::condition_variable done_cv_;   // waiters: a job reached a terminal state
  std::unordered_map<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> queue_;
  std::uint64_t next_job_id_ = 1;
  std::size_t in_flight_ = 0;
  bool draining_ = false;  // no new submissions
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t simulated_ = 0;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex wait_mu_;  // serializes wait(); join is not concurrency-safe
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::vector<int> open_fds_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace rfly::service
