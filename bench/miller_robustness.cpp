// Extension: FM0 vs Miller-M reply robustness through the relay. Gen2's M
// field trades data rate for interference robustness; this bench measures
// frame error rate vs SNR for each line code on the same 16-bit reply, and
// the airtime cost.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "gen2/fm0.h"
#include "gen2/miller.h"
#include "signal/noise.h"

using namespace rfly;
using namespace rfly::gen2;

namespace {

/// Frame error rate over `trials` random 16-bit frames at per-slot SNR.
double frame_error_rate(Miller m, double snr_db, int trials, Rng& rng) {
  int errors = 0;
  const double spc = 4.0;
  const double signal_amp = 1e-6;
  const double noise_power =
      signal_amp * signal_amp / from_db(snr_db);
  for (int t = 0; t < trials; ++t) {
    Bits bits(16);
    for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
    const std::vector<int> slots =
        (m == Miller::kFm0) ? fm0_levels(bits) : miller_chips(bits, m);
    const auto total = static_cast<std::size_t>(spc * slots.size());
    std::vector<cdouble> x(total + 64, cdouble{1e-3, 0.0});
    for (std::size_t i = 0; i < total; ++i) {
      const auto k = std::min(static_cast<std::size_t>(i / spc), slots.size() - 1);
      x[i] += signal_amp * static_cast<double>(slots[k]) * cis(1.1);
    }
    const double sigma = std::sqrt(noise_power / 2.0);
    for (auto& v : x) v += cdouble{rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma)};

    bool ok = false;
    if (m == Miller::kFm0) {
      const auto d = fm0_decode(x, spc, 16, false, 0.3);
      ok = d && d->bits == bits;
    } else {
      const auto d = miller_decode(x, spc, 16, m, false, 0.3);
      ok = d && d->bits == bits;
    }
    if (!ok) ++errors;
  }
  return static_cast<double>(errors) / trials;
}

const char* name_of(Miller m) {
  switch (m) {
    case Miller::kFm0:
      return "FM0";
    case Miller::kM2:
      return "Miller-2";
    case Miller::kM4:
      return "Miller-4";
    case Miller::kM8:
      return "Miller-8";
  }
  return "?";
}

double airtime_slots(Miller m) {
  return static_cast<double>(m == Miller::kFm0 ? fm0_half_bits(16)
                                               : miller_total_chips(16, m));
}

}  // namespace

int main() {
  bench::header("Ext. line codes", "FM0 vs Miller-M: frame error rate vs SNR");

  constexpr int kTrials = 60;
  std::printf("(16-bit frames, per-slot SNR; slots run at 2*BLF)\n\n");
  std::printf("  %-9s airtime_slots", "snr_db");
  for (auto m : {Miller::kFm0, Miller::kM2, Miller::kM4, Miller::kM8}) {
    std::printf("  %9s", name_of(m));
  }
  std::printf("\n  %-9s", "");
  std::printf(" %12s", "");
  for (auto m : {Miller::kFm0, Miller::kM2, Miller::kM4, Miller::kM8}) {
    std::printf("  %9.0f", airtime_slots(m));
  }
  std::printf("   <- slots per frame\n");

  for (double snr : {6.0, 3.0, 0.0, -3.0, -6.0, -9.0}) {
    std::printf("  %-9.0f %12s", snr, "");
    for (auto m : {Miller::kFm0, Miller::kM2, Miller::kM4, Miller::kM8}) {
      Rng rng(static_cast<std::uint64_t>(1000 + snr * 17) +
              static_cast<std::uint64_t>(m));
      std::printf("  %8.0f%%", 100.0 * frame_error_rate(m, snr, kTrials, rng));
    }
    std::printf("\n");
  }

  std::printf("\nHigher M spends proportionally more airtime per bit and buys\n"
              "lower error rates at a given per-slot SNR — the Gen2 trade the\n"
              "reader's M field controls (Section 2 of the paper fixes FM0 at\n"
              "BLF 500 kHz; the relay forwards any of them transparently).\n");
  return 0;
}
