// Extension (paper Section 5.2): 3D localization from a two-dimensional
// trajectory. A two-row flight (two altitudes) resolves height; error vs
// the vertical separation of the rows.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/system.h"
#include "drone/flight.h"
#include "drone/trajectory.h"
#include "localize/localizer.h"

using namespace rfly;
using namespace rfly::core;

int main(int argc, char** argv) {
  bench::CliOptions opts;
  if (!opts.parse(argc, argv)) return 2;
  bench::header("Ext. 3D", "3D localization error vs vertical aperture");

  SystemConfig sys_cfg;
  const RflySystem system(sys_cfg, channel::Environment{}, {0, 0, 1});

  std::printf("  row_separation_m   xy_err_cm   z_err_cm   trials\n");
  for (double dz : {0.0, 0.3, 0.6, 1.0, 1.5}) {
    std::vector<double> xy_err;
    std::vector<double> z_err;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      Rng rng(900 + seed);
      const Vec3 tag{12.0 + rng.uniform(-0.5, 0.5), 6.0 + rng.uniform(-0.5, 0.5),
                     rng.uniform(0.0, 0.8)};
      std::vector<Vec3> plan;
      for (double z : {1.2, 1.2 + dz}) {
        const auto row = drone::linear_trajectory({tag.x - 1.2, 8.0, z},
                                                  {tag.x + 1.2, 8.15, z}, 25);
        plan.insert(plan.end(), row.begin(), row.end());
        if (dz == 0.0) break;  // single row when no separation
      }
      const auto flight =
          drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);
      const auto measurements = system.collect_measurements(flight, tag, rng);
      if (measurements.size() < 5) continue;

      localize::Volume vol;
      vol.x_min = tag.x - 1.5;
      vol.x_max = tag.x + 1.5;
      vol.y_min = tag.y - 1.5;
      vol.y_max = tag.y + 1.2;
      vol.z_min = 0.0;
      vol.z_max = 1.2;
      vol.resolution_m = 0.05;
      localize::Localize3dConfig cfg3d;
      cfg3d.freq_hz = sys_cfg.carrier_hz + sys_cfg.freq_shift_hz;
      cfg3d.threads = opts.threads;
      cfg3d.kernel = opts.kernel;
      cfg3d.search = opts.search;
      const auto result = localize::localize_3d(measurements, vol, cfg3d);
      if (!result) continue;
      xy_err.push_back(std::hypot(result->position.x - tag.x,
                                  result->position.y - tag.y));
      z_err.push_back(std::abs(result->position.z - tag.z));
    }
    std::printf("  %16.1f   %9.1f   %8.1f   %6zu\n", dz,
                100.0 * median(xy_err), 100.0 * median(z_err), z_err.size());
  }

  std::printf("\nAt these close ranges the wavefront curvature lets even a planar\n"
              "pass estimate height coarsely; a second row at a different\n"
              "altitude roughly halves the z error and stabilizes it — the 2D\n"
              "trajectory extension the paper's Section 5.2 claims.\n");
  bench::paper_vs_ours("3D from 2D trajectory", "claimed (Sec. 5.2)", 1.0,
                       "(see table: z error falls with row separation)");
  return 0;
}
