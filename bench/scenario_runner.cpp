// Scenario runner: the generic mission CLI. Loads a scenario (named preset
// or key=value file), applies --set overrides, and runs a seed sweep on the
// batch runner — outer job parallelism composing with the inner SAR
// parallelism. The per-seed report lines are bit-identical at any --threads
// setting; only the timing footer varies run to run.
//
//   scenario_runner --scenario building --trials 5 --threads 4
//   scenario_runner --scenario sweep.rfly --set localize.grid_resolution_m=0.05
//   scenario_runner                # lists presets, runs `building` once
#include <cstdio>

#include "bench_util.h"
#include "sim/batch.h"

using namespace rfly;

namespace {

void print_result(std::size_t trial, const sim::BatchResult& result) {
  // The sweep derives each trial's engine seed by hashing (base seed, trial
  // index), so the trial number is the human-facing label and the raw seed
  // prints alongside for reproduction with --set seed=....
  if (!result.status.is_ok()) {
    std::printf("trial %-3zu (seed %llu) FAILED  %s\n", trial,
                static_cast<unsigned long long>(result.seed),
                result.status.to_string().c_str());
    return;
  }
  const auto& report = result.run.report;
  std::printf("trial %-3zu (seed %llu) discovered %zu/%zu localized %zu", trial,
              static_cast<unsigned long long>(result.seed), report.discovered,
              report.items.size(), report.localized);
  if (result.run.health.code() == StatusCode::kDegraded) {
    std::printf("  DEGRADED (coverage %.1f%%)",
                result.run.aperture_coverage * 100.0);
  }
  std::printf("\n");
  for (const auto& item : report.items) {
    if (item.localized) {
      std::printf("    %-24s (%7.2f, %7.2f)\n",
                  item.description.empty() ? "<unknown>" : item.description.c_str(),
                  item.estimate.x, item.estimate.y);
    } else {
      std::printf("    %-24s %s\n",
                  item.description.empty() ? "<unknown>" : item.description.c_str(),
                  status_code_name(item.status.code()));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.trials = 1;
  if (!opts.parse(argc, argv)) return 2;

  // Resolve the scenario: a preset name first, then a file path.
  std::string source = opts.scenario;
  if (source.empty()) {
    std::printf("no --scenario given; presets:");
    for (const auto& name : sim::preset_names()) std::printf(" %s", name.c_str());
    std::printf("\nrunning preset 'building'\n\n");
    source = "building";
  }
  auto loaded = sim::preset(source);
  if (!loaded) {
    loaded = sim::load_scenario_file(source);
    if (!loaded) {
      std::fprintf(stderr, "cannot resolve scenario '%s': %s\n", source.c_str(),
                   loaded.status().to_string().c_str());
      return 1;
    }
  }
  sim::Scenario scenario = std::move(loaded.value());

  for (const auto& [key, value] : opts.overrides) {
    if (Status status = sim::apply_override(scenario, key, value);
        !status.is_ok()) {
      // A bad --set is a command-line error like any other flag typo:
      // status + usage + exit 2 (load failures above stay exit 1).
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
      bench::CliOptions::usage(argv[0]);
      return 2;
    }
  }
  // An explicit --kernel wins over the scenario's localize.sar_kernel field
  // (and over --set overrides); without the flag the scenario decides, so
  // preset runs stay bit-identical to their goldens.
  if (opts.kernel_explicit) scenario.sar_kernel = opts.kernel;
  if (opts.search_explicit) scenario.sar_search = opts.search;
  if (Status status = sim::validate(scenario); !status.is_ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }

  const std::uint64_t first_seed = opts.seed != 1 ? opts.seed : scenario.seed;
  const std::size_t trials = opts.trials > 0 ? static_cast<std::size_t>(opts.trials) : 1;
  std::printf("scenario '%s': %zu tag(s), %zu leg(s); %zu trial(s) from base seed %llu, %u thread(s)\n\n",
              scenario.name.c_str(), scenario.tags.size(), scenario.legs.size(),
              trials, static_cast<unsigned long long>(first_seed),
              opts.threads);

  sim::BatchRunInfo info;
  const auto results = sim::run_seed_sweep(
      scenario, first_seed, trials,
      {opts.threads, opts.batch_mode, opts.cache_capacity}, &info);
  for (std::size_t i = 0; i < results.size(); ++i) print_result(i, results[i]);

  const auto summary = sim::summarize(results, info);
  std::printf("\n%zu job(s), %zu failed, %zu degraded; mean discovered %.2f, "
              "mean localized %.2f, mean coverage %.1f%%; %.3f s total over "
              "successful jobs\n",
              summary.jobs, summary.failed, summary.degraded,
              summary.mean_discovered, summary.mean_localized,
              summary.mean_coverage * 100.0, summary.total_seconds);
  std::printf("batch mode %s: %.1f missions/s; geometry cache %llu hit(s) / "
              "%llu miss(es); arena high-water %zu bytes\n",
              sim::batch_mode_name(opts.batch_mode),
              summary.missions_per_second,
              static_cast<unsigned long long>(summary.cache_hits),
              static_cast<unsigned long long>(summary.cache_misses),
              summary.arena_high_water_bytes);

  // Timing footer (wall clock — varies run to run, unlike the lines above).
  if (!results.empty() && results.front().status.is_ok()) {
    std::printf("stage seconds (job 0):");
    for (const auto& trace : results.front().run.trace) {
      std::printf(" %s=%.3f", sim::stage_name(trace.stage), trace.seconds);
    }
    std::printf("\n");
  }

  bench::Metrics metrics;
  metrics.add("jobs", static_cast<double>(summary.jobs));
  metrics.add("failed", static_cast<double>(summary.failed));
  metrics.add("degraded", static_cast<double>(summary.degraded));
  metrics.add("mean_discovered", summary.mean_discovered);
  metrics.add("mean_localized", summary.mean_localized);
  metrics.add("mean_coverage", summary.mean_coverage);
  metrics.add("total_seconds", summary.total_seconds);
  metrics.add("missions_per_second", summary.missions_per_second);
  metrics.add("cache_hits", static_cast<double>(summary.cache_hits));
  metrics.add("cache_misses", static_cast<double>(summary.cache_misses));
  metrics.add("arena_high_water_bytes",
              static_cast<double>(summary.arena_high_water_bytes));
  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  return summary.failed == 0 ? 0 : 1;
}
