// Fig. 9 — Self-interference isolation CDFs for the four leakage paths,
// RFly's relay vs a traditional analog (amplify-and-forward) relay.
// Methodology follows paper Section 7.1(a): 100 trials, tone injection,
// spectrum-analyzer power measurement, isolation = attenuation + gain, with
// the antenna isolation counted toward the total.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "relay/analog_relay.h"
#include "relay/coupling.h"
#include "relay/isolation.h"

using namespace rfly;
using namespace rfly::relay;

namespace {

struct Series {
  std::vector<double> intra_down, intra_up, inter_du, inter_ud;
};

Series run_trials(bool rfly_relay, int trials) {
  Series out;
  Rng rng(2024);
  for (int t = 0; t < trials; ++t) {
    // Per-trial antenna placement draw (the paper varies power and center
    // frequency per trial; component and antenna variation dominate here).
    const Coupling antennas = draw_coupling(CouplingConfig{}, rng);

    IsolationMeasurementConfig cfg;
    cfg.input_power_dbm = rng.uniform(-45.0, -25.0);

    RelayFactory factory;
    double shift = 0.0;
    if (rfly_relay) {
      RflyRelayConfig rcfg;
      const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(t);
      factory = [rcfg, seed] { return make_rfly_relay(rcfg, seed); };
      shift = rcfg.freq_shift_hz;
    } else {
      factory = [] { return std::make_unique<AnalogRelay>(AnalogRelayConfig{}); };
    }

    auto measure = [&](IsolationKind kind, double antenna_db) {
      IsolationMeasurementConfig c = cfg;
      c.antenna_isolation_db = antenna_db;
      return measure_isolation(factory, kind, shift, c).isolation_db;
    };
    out.intra_down.push_back(
        measure(IsolationKind::kIntraDownlink, antennas.intra_down_db()));
    out.intra_up.push_back(
        measure(IsolationKind::kIntraUplink, antennas.intra_up_db()));
    out.inter_du.push_back(
        measure(IsolationKind::kInterDownlinkUplink, antennas.inter_du_db()));
    out.inter_ud.push_back(
        measure(IsolationKind::kInterUplinkDownlink, antennas.inter_ud_db()));
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Fig. 9", "isolation CDFs: RFly vs traditional analog relay");
  constexpr int kTrials = 100;

  std::printf("running %d trials per relay type...\n\n", kTrials);
  const Series rfly_series = run_trials(true, kTrials);
  const Series analog = run_trials(false, kTrials);

  struct Row {
    const char* name;
    const std::vector<double>* ours;
    const std::vector<double>* base;
    double paper_median;
  };
  const Row rows[] = {
      {"(a) inter-downlink (Inter_ud)", &rfly_series.inter_ud, &analog.inter_ud, 110.0},
      {"(b) inter-uplink   (Inter_du)", &rfly_series.inter_du, &analog.inter_du, 92.0},
      {"(c) intra-downlink (Intra_d) ", &rfly_series.intra_down, &analog.intra_down, 77.0},
      {"(d) intra-uplink   (Intra_u) ", &rfly_series.intra_up, &analog.intra_up, 64.0},
  };

  for (const auto& row : rows) {
    std::printf("\n--- %s ---\n", row.name);
    bench::summary_line("RFly", *row.ours, "dB");
    bench::summary_line("Analog relay", *row.base, "dB");
    bench::print_cdf("RFly isolation", *row.ours, "dB");
    char metric[80];
    std::snprintf(metric, sizeof(metric), "%s median [dB]", row.name);
    bench::paper_vs_ours(metric, std::to_string(row.paper_median),
                         median(*row.ours), "dB");
    std::printf("improvement over analog relay (median): %.1f dB (paper: >= 50 dB)\n",
                median(*row.ours) - median(*row.base));
  }
  return 0;
}
