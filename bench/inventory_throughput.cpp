// Extension: Gen2 inventory throughput through the relay. The drone has
// finite loiter time per aisle; reads/second determines how fast a
// warehouse can be swept. Airtime is modeled from the real frame durations
// (PIE command lengths, T1 gaps, FM0 reply lengths at BLF 500 kHz), and the
// slot outcomes come from the protocol engine with physical collisions.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/inventory.h"
#include "gen2/fm0.h"
#include "gen2/pie.h"

using namespace rfly;
using namespace rfly::core;

namespace {

/// Airtime model for one inventory run, from the protocol transcript.
struct Airtime {
  double total_s = 0.0;

  void add_command(const gen2::Bits& bits, bool with_trcal) {
    gen2::PieConfig pie;
    total_s += gen2::pie_frame_duration(bits, pie, with_trcal);
    total_s += 62.5e-6;  // T1
  }
  void add_reply(std::size_t n_bits) {
    total_s += static_cast<double>(gen2::fm0_half_bits(n_bits)) /
               (2.0 * 500e3);
    total_s += 62.5e-6;  // T2 before the next command
  }
};

}  // namespace

int main() {
  bench::header("Ext. throughput", "inventory reads/second vs population and Q");

  std::printf("  population   initial_q   slots   collisions   reads   reads_per_s\n");
  for (int population : {5, 20, 50, 100}) {
    for (int q0 : {2, 4, 6}) {
      std::vector<gen2::Tag> tags;
      tags.reserve(static_cast<std::size_t>(population));
      for (int i = 0; i < population; ++i) {
        gen2::TagConfig cfg;
        cfg.epc = make_epc(static_cast<std::uint32_t>(i));
        tags.emplace_back(cfg, 3000 + static_cast<std::uint64_t>(i));
      }
      std::vector<TagAgent> agents;
      for (auto& t : tags) agents.push_back({&t, -5.0, 20.0});

      reader::QAlgorithm q_algo(static_cast<double>(q0));
      Rng rng(static_cast<std::uint64_t>(population * 10 + q0));
      InventoryRoundConfig round;
      round.q = q0;
      round.max_rounds = 32;
      const auto outcome = run_inventory(agents, round, q_algo, rng);

      // Airtime: one Query per round, one QueryRep/QueryAdjust per slot,
      // one RN16 per single, ACK + EPC reply per read.
      Airtime air;
      gen2::QueryCommand query;
      for (int r = 0; r < outcome.rounds; ++r) {
        air.add_command(gen2::encode(query), true);
      }
      for (int s = 0; s < outcome.slots; ++s) {
        air.add_command(gen2::encode(gen2::QueryRepCommand{}), false);
      }
      for (int s = 0; s < outcome.singles + outcome.collisions; ++s) {
        air.add_reply(gen2::kRn16Bits);
      }
      for (std::size_t s = 0; s < outcome.epcs.size(); ++s) {
        air.add_command(gen2::encode(gen2::AckCommand{}), false);
        air.add_reply(gen2::kEpcReplyBits);
      }

      std::printf("  %10d   %9d   %5d   %10d   %5zu   %11.0f\n", population, q0,
                  outcome.slots, outcome.collisions, outcome.epcs.size(),
                  static_cast<double>(outcome.epcs.size()) / air.total_s);
    }
  }

  std::printf("\nGen2 readers sustain ~100-400 reads/s depending on slot tuning;\n"
              "a well-matched Q wastes few slots on empties or collisions. The\n"
              "relay adds no protocol overhead (it is transparent), so sweep\n"
              "time is flight-path-limited, not protocol-limited.\n");
  return 0;
}
