// Fleet extension (paper Sections 4.3 / 9): how the system scales when the
// relays are daisy chained and the missions are flown as a fleet. Three
// sweeps, one JSON artifact (BENCH_fleet.json via --out):
//
//   1. Read range vs relay count 1..8 with a chain-tuned uplink — the
//      geometric-window sweep resolves multi-km chains instead of
//      saturating at the historical 2 km grid.
//   2. Fleet mission throughput vs tag population 100..5000 on a coarse
//      localization grid (0.1 m cells, 1.5 m half-width) — the whole
//      staged pipeline per mission: shared Gen2 inventory round,
//      per-chain disentanglement, SAR.
//   3. Greedy vs uniform trajectory planning at equal battery: dense
//      sub-wavelength waypoints where skipping redundant dwells buys
//      real aperture.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/daisy_chain.h"
#include "sim/batch.h"
#include "sim/fleet_plan.h"
#include "sim/scenario.h"

using namespace rfly;

namespace {

/// fleet_warehouse preset with `n_tags` random tags along its three aisles
/// and a coarse SAR grid so the large-population points finish in seconds.
sim::Scenario fleet_population(std::uint32_t n_tags, std::uint64_t seed) {
  sim::Scenario s = *sim::preset("fleet_warehouse");
  s.grid_resolution_m = 0.1;
  s.search_halfwidth_m = 1.5;
  s.tags.clear();
  Rng placement(seed);
  for (std::uint32_t i = 0; i < n_tags; ++i) {
    const double aisle_y = 5.0 + 10.0 * static_cast<double>(i % 3);
    s.tags.push_back({i,
                      {placement.uniform(8.0, 32.0),
                       aisle_y + placement.uniform(-1.0, 1.0), 0.0},
                      "tag " + std::to_string(i)});
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions options;
  options.trials = 2;  // fleet missions per throughput point
  if (!options.parse(argc, argv)) return 2;
  bench::header("Ext. fleet sweep",
                "chain range, fleet throughput, planner coverage");
  bench::Metrics metrics;

  // --- 1. Chain read range vs relay count -------------------------------
  core::DaisyChainConfig chain_cfg;
  chain_cfg.system.relay_uplink_gain_db = 54.0;  // chain-tuned re-amp
  std::printf("chain read range (uplink %.0f dB, Eq. 3 at %.0f dB)\n",
              chain_cfg.system.relay_uplink_gain_db,
              chain_cfg.stability_isolation_db);
  std::printf("  relays   read_range_m\n");
  double range_1 = 0.0;
  for (int n = 1; n <= 8; ++n) {
    const double range_m =
        core::chain_read_range_m(chain_cfg, n, 2.0, options.threads);
    if (n == 1) range_1 = range_m;
    const bool saturated = range_m >= core::kChainRangeCeilingM;
    std::printf("  %6d   %12.0f%s\n", n, range_m,
                saturated ? "  (sweep ceiling)" : "");
    metrics.add("chain_range_m_relays_" + std::to_string(n), range_m);
  }

  // --- 2. Fleet mission throughput vs tag population --------------------
  std::printf("\nfleet throughput (%d missions per point, coarse grid)\n",
              options.trials);
  std::printf("  tags     missions_per_sec   localized_frac\n");
  for (const std::uint32_t n_tags : {100u, 500u, 1000u, 5000u}) {
    const sim::Scenario scenario = fleet_population(n_tags, options.seed);
    std::vector<sim::BatchJob> jobs;
    for (int t = 0; t < options.trials; ++t) {
      jobs.push_back({scenario, stream_seed(options.seed, t)});
    }
    const auto start = std::chrono::steady_clock::now();
    const auto results = sim::run_batch(
        jobs, {options.threads, options.batch_mode, options.cache_capacity});
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::size_t localized = 0;
    bool failed = false;
    for (const auto& r : results) {
      if (!r.status.is_ok()) failed = true;
      localized += r.run.report.localized;
    }
    if (failed) {
      std::fprintf(stderr, "fleet mission failed at %u tags\n", n_tags);
      return 1;
    }
    const double missions_per_sec =
        seconds > 0.0 ? static_cast<double>(jobs.size()) / seconds : 0.0;
    const double localized_frac =
        static_cast<double>(localized) /
        static_cast<double>(jobs.size() * n_tags);
    std::printf("  %5u   %16.2f   %14.3f\n", n_tags, missions_per_sec,
                localized_frac);
    metrics.add("missions_per_sec_tags_" + std::to_string(n_tags),
                missions_per_sec);
    metrics.add("localized_frac_tags_" + std::to_string(n_tags),
                localized_frac);
  }

  // --- 3. Greedy vs uniform planner at equal battery --------------------
  // One long aisle sampled every 5 cm (well under the lambda/2 cap) with
  // expensive dwells: the uniform baseline burns the battery hovering at
  // redundant samples; greedy skips them and extends the aperture.
  sim::FleetPlanConfig plan_cfg;
  plan_cfg.energy.hover_power_w = 150.0;
  plan_cfg.energy.travel_power_w = 200.0;
  plan_cfg.energy.speed_mps = 2.0;
  plan_cfg.energy.dwell_s = 0.5;
  plan_cfg.battery_j = 2000.0;
  std::vector<sim::FleetPlanLeg> legs(1);
  for (int i = 0; i < 400; ++i) {
    legs[0].waypoints.push_back({0.05 * static_cast<double>(i), 0.0, 1.2});
  }
  plan_cfg.planner = sim::FleetPlanner::kGreedy;
  const sim::FleetPlan greedy = sim::plan_fleet_route(legs, plan_cfg);
  plan_cfg.planner = sim::FleetPlanner::kUniform;
  const sim::FleetPlan uniform = sim::plan_fleet_route(legs, plan_cfg);
  std::printf("\nplanner coverage at %.0f J (%zu planned waypoints)\n",
              plan_cfg.battery_j, legs[0].waypoints.size());
  std::printf("  greedy  %6.3f  (%zu dwells, %.0f J)\n", greedy.coverage,
              greedy.selected.size(), greedy.energy_spent_j);
  std::printf("  uniform %6.3f  (%zu dwells, %.0f J)\n", uniform.coverage,
              uniform.selected.size(), uniform.energy_spent_j);
  metrics.add("planner_coverage_greedy", greedy.coverage);
  metrics.add("planner_coverage_uniform", uniform.coverage);
  metrics.add("planner_coverage_ratio",
              uniform.coverage > 0.0 ? greedy.coverage / uniform.coverage
                                     : 0.0);

  bench::paper_vs_ours("chaining (Sec. 4.3/9)", "future work",
                       core::chain_read_range_m(chain_cfg, 3) /
                           (range_1 > 0.0 ? range_1 : 1.0),
                       "x range with 3 relays");
  bench::paper_vs_ours("planner coverage vs uniform", "n/a (extension)",
                       greedy.coverage / (uniform.coverage > 0.0
                                              ? uniform.coverage
                                              : 1.0),
                       "x");
  if (!bench::finish_observability(options, metrics)) return 1;
  return metrics.write(options.out) ? 0 : 1;
}
