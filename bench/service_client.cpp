// service_client — command-line client for a running `rflyd` daemon. One
// subcommand per wire-protocol request; server-side ERRORs print as their
// typed Status (with the retry-after hint when the daemon is applying
// backpressure) and exit 1, CLI mistakes exit 2.
//
//   service_client --port P submit --scenario warehouse --seed 7
//   service_client --port P status 3
//   service_client --port P result 3            # blocks until terminal
//   service_client --port P run --scenario warehouse --seed 7
//   service_client --port P stats
//   service_client --port P cancel 3
//   service_client --port P shutdown [--no-drain]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/client.h"
#include "sim/scenario.h"

using namespace rfly;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N <command> [args]\n"
      "  submit --scenario PRESET|FILE [--seed N] [--set key=value]...\n"
      "  status JOB_ID\n"
      "  result JOB_ID [--no-wait]\n"
      "  run    --scenario PRESET|FILE [--seed N] [--set key=value]...\n"
      "  cancel JOB_ID\n"
      "  stats\n"
      "  shutdown [--no-drain]\n",
      argv0);
}

/// Resolve --scenario the same way scenario_runner does (preset name first,
/// then file path), apply --set overrides, and hand back the canonical
/// serialized text the daemon's result cache keys on.
Expected<std::string> resolve_scenario_text(
    const std::string& source,
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  auto loaded = sim::preset(source);
  if (!loaded) loaded = sim::load_scenario_file(source);
  if (!loaded) {
    return std::move(loaded).with_context("cannot resolve scenario '" + source +
                                          "'").status();
  }
  sim::Scenario scenario = std::move(loaded.value());
  for (const auto& [key, value] : overrides) {
    if (Status status = sim::apply_override(scenario, key, value);
        !status.is_ok()) {
      return status;
    }
  }
  if (Status status = sim::validate(scenario); !status.is_ok()) return status;
  return sim::serialize(scenario);
}

void print_result(const sim::BatchResult& result) {
  if (!result.status.is_ok()) {
    std::printf("mission FAILED  %s\n", result.status.to_string().c_str());
    return;
  }
  const auto& report = result.run.report;
  std::printf("scenario '%s' seed %llu: discovered %zu/%zu localized %zu",
              result.scenario_name.c_str(),
              static_cast<unsigned long long>(result.seed), report.discovered,
              report.items.size(), report.localized);
  if (result.run.health.code() == StatusCode::kDegraded) {
    std::printf("  DEGRADED (coverage %.1f%%)",
                result.run.aperture_coverage * 100.0);
  }
  std::printf("\n");
  for (const auto& item : report.items) {
    if (item.localized) {
      std::printf("  %-24s (%7.2f, %7.2f)\n",
                  item.description.empty() ? "<unknown>"
                                           : item.description.c_str(),
                  item.estimate.x, item.estimate.y);
    } else {
      std::printf("  %-24s %s\n",
                  item.description.empty() ? "<unknown>"
                                           : item.description.c_str(),
                  status_code_name(item.status.code()));
    }
  }
}

int report_error(service::Client& client, const Status& status) {
  std::fprintf(stderr, "%s\n", status.to_string().c_str());
  if (status.code() == StatusCode::kUnavailable &&
      client.last_retry_after_ms() > 0) {
    std::fprintf(stderr, "retry after %u ms\n", client.last_retry_after_ms());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string command;
  std::uint64_t job_id = 0;
  bool have_job_id = false;
  std::string scenario_source;
  std::uint64_t seed = 1;
  bool wait = true;
  bool drain = true;
  std::vector<std::pair<std::string, std::string>> overrides;

  auto fail = [&](const Status& status) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    usage(argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--port" && value != nullptr) {
      if (Status s = bench::parse_cli_number(arg, value, port); !s.is_ok()) {
        return fail(s);
      }
      ++i;
    } else if (arg == "--scenario" && value != nullptr) {
      scenario_source = value;
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      if (Status s = bench::parse_cli_number(arg, value, seed); !s.is_ok()) {
        return fail(s);
      }
      ++i;
    } else if (arg == "--set" && value != nullptr) {
      const std::string pair = value;
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return fail({StatusCode::kParseError,
                     "--set wants key=value, got '" + pair + "'"});
      }
      overrides.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
      ++i;
    } else if (arg == "--no-wait") {
      wait = false;
    } else if (arg == "--no-drain") {
      drain = false;
    } else if (command.empty() && !arg.empty() && arg[0] != '-') {
      command = arg;
    } else if (!command.empty() && !have_job_id && !arg.empty() &&
               arg[0] != '-') {
      if (Status s = bench::parse_cli_number("JOB_ID", arg.c_str(), job_id);
          !s.is_ok()) {
        return fail(s);
      }
      have_job_id = true;
    } else {
      return fail({StatusCode::kParseError, "unknown argument '" + arg + "'"});
    }
  }
  if (command.empty()) {
    return fail({StatusCode::kParseError, "no command given"});
  }
  if (port == 0) {
    return fail({StatusCode::kParseError, "--port is required"});
  }
  const bool needs_job = command == "status" || command == "result" ||
                         command == "cancel";
  if (needs_job && !have_job_id) {
    return fail({StatusCode::kParseError, command + " wants a JOB_ID"});
  }
  const bool needs_scenario = command == "submit" || command == "run";
  if (needs_scenario && scenario_source.empty()) {
    return fail({StatusCode::kParseError, command + " wants --scenario"});
  }

  auto connected = service::Client::connect(port);
  if (!connected) {
    std::fprintf(stderr, "%s\n", connected.status().to_string().c_str());
    return 1;
  }
  service::Client client = std::move(connected.value());

  if (command == "submit" || command == "run") {
    auto text = resolve_scenario_text(scenario_source, overrides);
    if (!text) {
      std::fprintf(stderr, "%s\n", text.status().to_string().c_str());
      return 1;
    }
    auto ack = client.submit(*text, seed);
    if (!ack) return report_error(client, ack.status());
    std::printf("job %llu %s\n", static_cast<unsigned long long>(ack->job_id),
                ack->cached ? "(served from result cache)" : "queued");
    if (command == "submit") return 0;
    auto result = client.result(ack->job_id, /*wait=*/true);
    if (!result) return report_error(client, result.status());
    print_result(*result);
    return 0;
  }
  if (command == "status") {
    auto status = client.status(job_id);
    if (!status) return report_error(client, status.status());
    std::printf("job %llu: %s%s (daemon queue depth %llu)\n",
                static_cast<unsigned long long>(job_id),
                service::job_state_name(status->state),
                status->cached ? " [cached]" : "",
                static_cast<unsigned long long>(status->queue_depth));
    return 0;
  }
  if (command == "result") {
    auto result = client.result(job_id, wait);
    if (!result) return report_error(client, result.status());
    print_result(*result);
    return 0;
  }
  if (command == "cancel") {
    auto ack = client.cancel(job_id);
    if (!ack) return report_error(client, ack.status());
    std::printf("job %llu: %s (now %s)\n",
                static_cast<unsigned long long>(job_id),
                ack->removed ? "removed from queue" : "not removable",
                service::job_state_name(ack->state));
    return 0;
  }
  if (command == "stats") {
    auto stats = client.stats();
    if (!stats) return report_error(client, stats.status());
    std::printf("submitted %llu  completed %llu  simulated %llu  rejected "
                "%llu  cancelled %llu\n",
                static_cast<unsigned long long>(stats->submitted),
                static_cast<unsigned long long>(stats->completed),
                static_cast<unsigned long long>(stats->simulated),
                static_cast<unsigned long long>(stats->rejected),
                static_cast<unsigned long long>(stats->cancelled));
    std::printf("result cache: %llu hit(s) / %llu miss(es), %llu entries\n",
                static_cast<unsigned long long>(stats->cache_hits),
                static_cast<unsigned long long>(stats->cache_misses),
                static_cast<unsigned long long>(stats->cache_entries));
    std::printf("queue %llu/%llu, %llu in flight%s\n",
                static_cast<unsigned long long>(stats->queue_depth),
                static_cast<unsigned long long>(stats->queue_capacity),
                static_cast<unsigned long long>(stats->in_flight),
                stats->draining != 0 ? ", draining" : "");
    return 0;
  }
  if (command == "shutdown") {
    if (Status status = client.shutdown(drain); !status.is_ok()) {
      return report_error(client, status);
    }
    std::printf("shutdown requested (%s)\n",
                drain ? "draining queued jobs" : "cancelling queued jobs");
    return 0;
  }
  return fail({StatusCode::kParseError, "unknown command '" + command + "'"});
}
