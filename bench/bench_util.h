// Shared helpers for the figure-reproduction benches: CLI argument parsing
// (every bench understands the same --seed/--trials/--threads/--out flags
// instead of hand-rolling argv handling) and output formatting — aligned
// columns plus a PAPER-vs-OURS line so EXPERIMENTS.md can be filled straight
// from the run logs, and an optional JSON metrics file for machine readers.
#pragma once

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <system_error>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "common/status.h"
#include "localize/sar_kernel.h"
#include "sim/batch.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfly::bench {

/// Checked numeric parsing for CLI values: the whole token must be a number
/// that fits T — base-10 for integers, standard decimal/scientific notation
/// for floating-point T. Replaces atoi/strtoull/atof, which silently read
/// garbage as 0 ("--trials 1O0" ran one hundred-ish trials as zero) and
/// ignore trailing junk ("0.1x" is a parse error here, not 0.1). Negative
/// input to an unsigned T fails (from_chars rejects the sign) instead of
/// wrapping; "nan"/"inf" fail the finiteness check — no CLI knob here means
/// a non-finite value.
template <typename T>
Status parse_cli_number(const std::string& flag, const char* text, T& out) {
  const char* end = text + std::string_view(text).size();
  T value{};
  std::from_chars_result result{};
  if constexpr (std::is_floating_point_v<T>) {
    result = std::from_chars(text, end, value);
  } else {
    result = std::from_chars(text, end, value, 10);
  }
  if (result.ec == std::errc::result_out_of_range) {
    return {StatusCode::kParseError,
            flag + " value '" + text + "' is out of range"};
  }
  constexpr const char* kind =
      std::is_floating_point_v<T> ? " wants a number, got '"
                                  : " wants an integer, got '";
  if (result.ec != std::errc() || result.ptr != end || text == end) {
    return {StatusCode::kParseError, flag + kind + text + "'"};
  }
  if constexpr (std::is_floating_point_v<T>) {
    if (!std::isfinite(value)) {
      return {StatusCode::kParseError, flag + kind + text + "'"};
    }
  }
  out = value;
  return Status::ok();
}

/// Common bench options. Construct with the bench's defaults, then
/// parse(argc, argv) to apply overrides. Unknown flags abort with usage —
/// better than a sweep silently running the default.
struct CliOptions {
  std::uint64_t seed = 1;
  int trials = 0;       // bench-specific meaning (trials, per-point runs, ...)
  unsigned threads = 0; // 0 = hardware concurrency
  std::string out;      // JSON metrics path; empty = stdout only
  std::string scenario; // scenario file (scenario_runner)
  bool report = false;  // print the span tree + metric table after the run
  std::string trace_out; // Chrome trace-event JSON path; empty = none
  /// SAR evaluation kernel (--kernel exact|fast|auto). Benches default to
  /// fast — they measure perf, not goldens; pass --kernel exact to compare
  /// against the seed's libm loop.
  localize::SarKernel kernel = localize::SarKernel::kFast;
  /// True when --kernel was passed explicitly. scenario_runner uses this to
  /// decide whether the flag overrides the scenario's own sar_kernel field.
  bool kernel_explicit = false;
  /// SAR search strategy (--search exact|incremental|coarse2fine), same
  /// override semantics as --kernel. Benches default to the legacy exact
  /// sweep so existing runs stay comparable.
  localize::SarSearch search = localize::SarSearch::kExact;
  bool search_explicit = false;
  /// Batch execution mode (--batch batched|per-mission): whether repeated
  /// missions share the measurement plane / geometry cache / arena, or each
  /// job runs its pipeline independently. Results are bit-identical either
  /// way; the knob exists to measure the difference and to pin parity.
  sim::BatchMode batch_mode = sim::BatchMode::kBatched;
  /// GeometryCache retention bound (--cache-capacity N); 0 disables
  /// retention so every plane group rebuilds its buffers cold.
  std::size_t cache_capacity = localize::GeometryCache::kDefaultCapacity;
  /// `--set key=value` overrides, in order (scenario_runner).
  std::vector<std::pair<std::string, std::string>> overrides;

  /// Returns false (after printing the parse error and usage to stderr) on
  /// a malformed command line; the bench should exit non-zero.
  bool parse(int argc, char** argv) {
    auto value_of = [&](int& i) -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    auto fail = [&](const Status& status) {
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
      usage(argv[0]);
      return false;
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const char* value = nullptr;
      if (arg == "--seed" && (value = value_of(i))) {
        if (Status s = parse_cli_number(arg, value, seed); !s.is_ok()) {
          return fail(s);
        }
      } else if (arg == "--trials" && (value = value_of(i))) {
        if (Status s = parse_cli_number(arg, value, trials); !s.is_ok()) {
          return fail(s);
        }
      } else if (arg == "--threads" && (value = value_of(i))) {
        if (Status s = parse_cli_number(arg, value, threads); !s.is_ok()) {
          return fail(s);
        }
      } else if (arg == "--out" && (value = value_of(i))) {
        out = value;
      } else if (arg == "--scenario" && (value = value_of(i))) {
        scenario = value;
      } else if (arg == "--kernel" && (value = value_of(i))) {
        if (!localize::parse_sar_kernel(value, kernel)) {
          return fail({StatusCode::kParseError,
                       "--kernel wants exact|fast|auto, got '" +
                           std::string(value) + "'"});
        }
        kernel_explicit = true;
      } else if (arg == "--search" && (value = value_of(i))) {
        if (!localize::parse_sar_search(value, search)) {
          return fail({StatusCode::kParseError,
                       "--search wants exact|incremental|coarse2fine, got '" +
                           std::string(value) + "'"});
        }
        search_explicit = true;
      } else if (arg == "--batch" && (value = value_of(i))) {
        if (!sim::parse_batch_mode(value, batch_mode)) {
          return fail({StatusCode::kParseError,
                       "--batch wants batched|per-mission, got '" +
                           std::string(value) + "'"});
        }
      } else if (arg == "--cache-capacity" && (value = value_of(i))) {
        if (Status s = parse_cli_number(arg, value, cache_capacity); !s.is_ok()) {
          return fail(s);
        }
      } else if (arg == "--report") {
        report = true;
      } else if (arg == "--trace-out" && (value = value_of(i))) {
        trace_out = value;
      } else if (arg == "--set" && (value = value_of(i))) {
        const std::string pair = value;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          return fail({StatusCode::kParseError,
                       "--set wants key=value, got '" + pair + "'"});
        }
        overrides.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
      } else {
        return fail({StatusCode::kParseError, "unknown argument '" + arg + "'"});
      }
    }
    return true;
  }

  static void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--trials N] [--threads N] "
                 "[--kernel exact|fast|auto] "
                 "[--search exact|incremental|coarse2fine] "
                 "[--batch batched|per-mission] [--cache-capacity N] "
                 "[--out FILE] "
                 "[--scenario FILE] [--set key=value]... [--report] "
                 "[--trace-out FILE]\n",
                 argv0);
  }
};

/// Flat JSON metrics accumulator: add(name, value) pairs, then write() to
/// the --out path ({"median_cm": 19.3, ...}). add_json() attaches an
/// already-rendered JSON value (e.g. the obs snapshot) under a key; raw
/// entries print after the numeric ones. No-op when the path is empty.
class Metrics {
 public:
  void add(const std::string& name, double value) {
    entries_.emplace_back(name, value);
  }
  /// `json` must be a complete JSON value; it is emitted verbatim.
  void add_json(const std::string& name, std::string json) {
    raw_entries_.emplace_back(name, std::move(json));
  }
  /// Typed variant: kIoError names the path and the errno cause when the
  /// file cannot be opened or the write comes up short. Empty path = no-op.
  Status write_checked(const std::string& path) const {
    if (path.empty()) return Status::ok();
    FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      return {StatusCode::kIoError, "cannot write metrics to '" + path +
                                        "': " + std::strerror(errno)};
    }
    // Keys go through json_escape (a scenario-derived name may hold quotes
    // or control bytes) and values through json_number (NaN/Inf -> null);
    // raw %s/%.17g here used to emit documents no strict parser accepted.
    std::fprintf(file, "{");
    bool first = true;
    for (const auto& [name, value] : entries_) {
      std::fprintf(file, "%s%s: %s", first ? "" : ", ",
                   json_quote(name).c_str(), json_number(value).c_str());
      first = false;
    }
    for (const auto& [name, json] : raw_entries_) {
      std::fprintf(file, "%s%s: %s", first ? "" : ", ",
                   json_quote(name).c_str(), json.c_str());
      first = false;
    }
    std::fprintf(file, "}\n");
    const bool wrote = std::ferror(file) == 0;
    const bool closed = std::fclose(file) == 0;
    if (!wrote || !closed) {
      return {StatusCode::kIoError, "short write to '" + path + "'"};
    }
    return Status::ok();
  }

  bool write(const std::string& path) const {
    const Status status = write_checked(path);
    if (!status.is_ok()) {
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
    }
    return status.is_ok();
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
  std::vector<std::pair<std::string, std::string>> raw_entries_;
};

/// Shared tail for every bench: drain the trace and snapshot the metrics
/// once, fold the snapshot into `metrics` under a "metrics" key (so the
/// --out JSON carries it), then honor --report and --trace-out. Call after
/// the workload, before Metrics::write(). Returns false when --trace-out
/// could not be written.
inline bool finish_observability(const CliOptions& options, Metrics& metrics) {
  const obs::MetricsSnapshot snapshot = obs::snapshot();
  const obs::Trace trace = obs::drain_trace();
  metrics.add_json("metrics", obs::metrics_to_json(snapshot));
  if (options.report) obs::print_report(stdout, trace, snapshot);
  if (!options.trace_out.empty()) {
    std::string error;
    if (!obs::write_trace_file(options.trace_out, trace, &error)) {
      const Status status{StatusCode::kIoError, error};
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
      return false;
    }
  }
  return true;
}

inline void header(const std::string& figure, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

/// Print an empirical CDF as (value, fraction) rows, subsampled to ~20 rows.
inline void print_cdf(const std::string& label, std::span<const double> values,
                      const std::string& unit) {
  const auto cdf = empirical_cdf(values);
  std::printf("CDF of %s (%zu trials):\n  %12s  fraction\n", label.c_str(),
              values.size(), unit.c_str());
  const std::size_t step = cdf.size() > 20 ? cdf.size() / 20 : 1;
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf("  %12.3f  %8.2f\n", cdf[i].value, cdf[i].fraction);
  }
  if (!cdf.empty()) {
    std::printf("  %12.3f  %8.2f\n", cdf.back().value, cdf.back().fraction);
  }
}

inline void summary_line(const std::string& label, std::span<const double> values,
                         const std::string& unit) {
  const Summary s = summarize(values);
  std::printf("%-28s median %8.3f %s   p10 %8.3f   p90 %8.3f   p99 %8.3f\n",
              label.c_str(), s.p50, unit.c_str(), s.p10, s.p90, s.p99);
}

inline void paper_vs_ours(const std::string& metric, const std::string& paper,
                          double ours, const std::string& unit) {
  std::printf("PAPER vs OURS | %-38s paper: %-14s ours: %.3g %s\n", metric.c_str(),
              paper.c_str(), ours, unit.c_str());
}

}  // namespace rfly::bench
