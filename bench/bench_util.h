// Shared output helpers for the figure-reproduction benches. Every bench
// prints the figure's series as aligned columns plus a PAPER-vs-OURS line so
// EXPERIMENTS.md can be filled straight from the run logs.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/stats.h"

namespace rfly::bench {

inline void header(const std::string& figure, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

/// Print an empirical CDF as (value, fraction) rows, subsampled to ~20 rows.
inline void print_cdf(const std::string& label, std::span<const double> values,
                      const std::string& unit) {
  const auto cdf = empirical_cdf(values);
  std::printf("CDF of %s (%zu trials):\n  %12s  fraction\n", label.c_str(),
              values.size(), unit.c_str());
  const std::size_t step = cdf.size() > 20 ? cdf.size() / 20 : 1;
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf("  %12.3f  %8.2f\n", cdf[i].value, cdf[i].fraction);
  }
  if (!cdf.empty()) {
    std::printf("  %12.3f  %8.2f\n", cdf.back().value, cdf.back().fraction);
  }
}

inline void summary_line(const std::string& label, std::span<const double> values,
                         const std::string& unit) {
  const Summary s = summarize(values);
  std::printf("%-28s median %8.3f %s   p10 %8.3f   p90 %8.3f   p99 %8.3f\n",
              label.c_str(), s.p50, unit.c_str(), s.p10, s.p90, s.p99);
}

inline void paper_vs_ours(const std::string& metric, const std::string& paper,
                          double ours, const std::string& unit) {
  std::printf("PAPER vs OURS | %-38s paper: %-14s ours: %.3g %s\n", metric.c_str(),
              paper.c_str(), ours, unit.c_str());
}

}  // namespace rfly::bench
