// Shared helpers for the figure-reproduction benches: CLI argument parsing
// (every bench understands the same --seed/--trials/--threads/--out flags
// instead of hand-rolling argv handling) and output formatting — aligned
// columns plus a PAPER-vs-OURS line so EXPERIMENTS.md can be filled straight
// from the run logs, and an optional JSON metrics file for machine readers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace rfly::bench {

/// Common bench options. Construct with the bench's defaults, then
/// parse(argc, argv) to apply overrides. Unknown flags abort with usage —
/// better than a sweep silently running the default.
struct CliOptions {
  std::uint64_t seed = 1;
  int trials = 0;       // bench-specific meaning (trials, per-point runs, ...)
  unsigned threads = 0; // 0 = hardware concurrency
  std::string out;      // JSON metrics path; empty = stdout only
  std::string scenario; // scenario file (scenario_runner)
  /// `--set key=value` overrides, in order (scenario_runner).
  std::vector<std::pair<std::string, std::string>> overrides;

  /// Returns false (after printing usage to stderr) on a malformed
  /// command line; the bench should exit non-zero.
  bool parse(int argc, char** argv) {
    auto value_of = [&](int& i) -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const char* value = nullptr;
      if (arg == "--seed" && (value = value_of(i))) {
        seed = std::strtoull(value, nullptr, 10);
      } else if (arg == "--trials" && (value = value_of(i))) {
        trials = std::atoi(value);
      } else if (arg == "--threads" && (value = value_of(i))) {
        threads = static_cast<unsigned>(std::atoi(value));
      } else if (arg == "--out" && (value = value_of(i))) {
        out = value;
      } else if (arg == "--scenario" && (value = value_of(i))) {
        scenario = value;
      } else if (arg == "--set" && (value = value_of(i))) {
        const std::string pair = value;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          std::fprintf(stderr, "--set wants key=value, got '%s'\n", value);
          return false;
        }
        overrides.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
      } else {
        std::fprintf(stderr,
                     "unknown argument '%s'\nusage: %s [--seed N] [--trials N] "
                     "[--threads N] [--out FILE] [--scenario FILE] "
                     "[--set key=value]...\n",
                     arg.c_str(), argv[0]);
        return false;
      }
    }
    return true;
  }
};

/// Flat JSON metrics accumulator: add(name, value) pairs, then write() to
/// the --out path ({"median_cm": 19.3, ...}). No-op when the path is empty.
class Metrics {
 public:
  void add(const std::string& name, double value) {
    entries_.emplace_back(name, value);
  }
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write metrics to '%s'\n", path.c_str());
      return false;
    }
    std::fprintf(file, "{");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(file, "%s\"%s\": %.17g", i == 0 ? "" : ", ",
                   entries_[i].first.c_str(), entries_[i].second);
    }
    std::fprintf(file, "}\n");
    std::fclose(file);
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

inline void header(const std::string& figure, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

/// Print an empirical CDF as (value, fraction) rows, subsampled to ~20 rows.
inline void print_cdf(const std::string& label, std::span<const double> values,
                      const std::string& unit) {
  const auto cdf = empirical_cdf(values);
  std::printf("CDF of %s (%zu trials):\n  %12s  fraction\n", label.c_str(),
              values.size(), unit.c_str());
  const std::size_t step = cdf.size() > 20 ? cdf.size() / 20 : 1;
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf("  %12.3f  %8.2f\n", cdf[i].value, cdf[i].fraction);
  }
  if (!cdf.empty()) {
    std::printf("  %12.3f  %8.2f\n", cdf.back().value, cdf.back().fraction);
  }
}

inline void summary_line(const std::string& label, std::span<const double> values,
                         const std::string& unit) {
  const Summary s = summarize(values);
  std::printf("%-28s median %8.3f %s   p10 %8.3f   p90 %8.3f   p99 %8.3f\n",
              label.c_str(), s.p50, unit.c_str(), s.p10, s.p90, s.p99);
}

inline void paper_vs_ours(const std::string& metric, const std::string& paper,
                          double ours, const std::string& unit) {
  std::printf("PAPER vs OURS | %-38s paper: %-14s ours: %.3g %s\n", metric.c_str(),
              paper.c_str(), ours, unit.c_str());
}

}  // namespace rfly::bench
