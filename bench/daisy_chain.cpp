// Extension (paper Section 4.3 / Section 9): daisy-chained relays. How the
// read range scales with hop count once each hop obeys the Eq. 3 stability
// rule, and where the per-hop budgets go.
#include <cstdio>

#include "bench_util.h"
#include "core/daisy_chain.h"

using namespace rfly;
using namespace rfly::core;

int main() {
  bench::header("Ext. daisy chain", "read range vs number of chained relays");

  DaisyChainConfig cfg;
  // Chain-tuned uplink gain: the reply must be re-amplified per hop.
  cfg.system.relay_uplink_gain_db = 54.0;

  std::printf("per-hop stability bound (Eq. 3 at %.0f dB isolation)\n\n",
              cfg.stability_isolation_db);
  std::printf("  relays   read_range_m   range_per_relay_m\n");
  double r1 = 0.0;
  for (int n = 1; n <= 5; ++n) {
    const double r = chain_read_range_m(cfg, n);
    if (n == 1) r1 = r;
    std::printf("  %6d   %12.0f   %17.1f\n", n, r, r / n);
  }

  // Per-hop budget detail for a 3-relay chain at its working range.
  const double d = chain_read_range_m(cfg, 3) - 2.0;
  std::vector<Vec3> relays;
  for (int i = 1; i <= 3; ++i) {
    relays.push_back({d * static_cast<double>(i) / 3.0, 0.0, 1.0});
  }
  const auto budget = evaluate_chain(cfg, channel::Environment{}, {0, 0, 1},
                                     relays, {d + 2.0, 0.0, 0.5});
  std::printf("\n3-relay chain at %.0f m: tag incident %.1f dBm, reply SNR %.1f dB\n",
              d + 2.0, budget.tag_incident_dbm, budget.reply_snr_db);
  for (std::size_t i = 0; i < budget.hop_downlink_gain_db.size(); ++i) {
    std::printf("  hop %zu effective downlink gain: %.1f dB\n", i + 1,
                budget.hop_downlink_gain_db[i]);
  }

  bench::paper_vs_ours("single-relay range [m]", "~50 (Fig. 11)", r1, "m");
  bench::paper_vs_ours("chaining", "future work (Sec. 4.3/9)",
                       chain_read_range_m(cfg, 3) / (r1 > 0 ? r1 : 1.0),
                       "x range with 3 relays");
  return 0;
}
