// Fig. 6 — P(x, y) localization heatmaps: (a) line-of-sight, (b) strong
// multipath from steel shelves. Rendered as ASCII intensity maps with the
// true tag (T), the chosen estimate (X), and the flight path (=) marked.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/system.h"
#include "drone/flight.h"
#include "drone/trajectory.h"
#include "localize/localizer.h"

using namespace rfly;
using namespace rfly::core;

namespace {

void run_scene(const char* title, int shelf_rows, std::uint64_t seed,
               double paper_error_hint_m) {
  std::printf("\n--- %s ---\n", title);

  SystemConfig sys_cfg;
  channel::Environment env;
  if (shelf_rows > 0) {
    // Steel shelf rows flanking the scene (strong reflectors).
    env.add_obstacle({{{-2.0, -1.2}, {5.0, -1.2}}, channel::steel_shelf()});
    env.add_obstacle({{{-2.0, 2.6}, {5.0, 2.6}}, channel::steel_shelf()});
  }
  const Vec3 reader_pos{-8.0, 1.0, 1.0};
  RflySystem system(sys_cfg, env, reader_pos);

  const Vec3 tag{1.4, 0.9, 0.0};
  Rng rng(seed);
  const auto plan = drone::linear_trajectory({0.0, -0.4, 1.0}, {2.8, -0.35, 1.0}, 50);
  const auto flight =
      drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);
  const auto measurements = system.collect_measurements(flight, tag, rng);
  std::printf("measurements: %zu\n", measurements.size());

  localize::LocalizerConfig loc;
  loc.freq_hz = sys_cfg.carrier_hz + sys_cfg.freq_shift_hz;
  loc.grid = {-0.5, 3.0, -0.5, 2.0, 0.02};
  loc.multires = false;
  loc.peak_threshold_fraction = 0.4;
  const auto result = localize::localize_2d(measurements, loc);
  if (!result) {
    std::printf("localization failed\n");
    return;
  }
  const double err = std::hypot(result->x - tag.x, result->y - tag.y);

  // Render the heatmap.
  const auto iso = localize::disentangle(measurements);
  localize::GridSpec render = loc.grid;
  render.resolution_m = 0.07;
  const auto map = localize::sar_heatmap(iso, render, loc.freq_hz);
  const double peak = map.max_value();
  static const char kShades[] = " .:-=+*#%@";
  for (std::size_t iy = render.ny(); iy-- > 0;) {
    std::printf("  ");
    for (std::size_t ix = 0; ix < render.nx(); ++ix) {
      const double x = render.x_at(ix);
      const double y = render.y_at(iy);
      char c = kShades[static_cast<int>(9.0 * map.at(ix, iy) / peak)];
      if (std::abs(y - (-0.4)) < 0.05 && x >= 0.0 && x <= 2.8) c = '=';
      if (std::hypot(x - tag.x, y - tag.y) < 0.06) c = 'T';
      if (std::hypot(x - result->x, y - result->y) < 0.06) c = 'X';
      std::putchar(c);
    }
    std::printf("\n");
  }
  std::printf("legend: T true tag, X estimate, = flight path; error %.3f m\n", err);
  std::printf("candidate peaks considered: %zu\n", result->candidates.size());
  bench::paper_vs_ours("localization error in this scene [m]",
                       shelf_rows > 0 ? "(sub-meter, nearest-peak)" : "<0.07",
                       err, "m");
  (void)paper_error_hint_m;
}

}  // namespace

int main() {
  bench::header("Fig. 6", "P(x,y) heatmaps: line-of-sight vs strong multipath");
  run_scene("(a) line of sight", 0, 31, 0.07);
  run_scene("(b) strong multipath (steel shelves)", 2, 32, 0.2);
  return 0;
}
