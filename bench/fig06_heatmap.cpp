// Fig. 6 — P(x, y) localization heatmaps: (a) line-of-sight, (b) strong
// multipath from steel shelves. Rendered as ASCII intensity maps with the
// true tag (T), the chosen estimate (X), and the flight path (=) marked.
//
// Also sweeps the SAR engine's thread count on the fig06-sized problem and
// writes BENCH_sar.json (format documented in EXPERIMENTS.md) so the perf
// trajectory of the hottest kernel is tracked from run to run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/system.h"
#include "drone/flight.h"
#include "drone/trajectory.h"
#include "localize/localizer.h"

using namespace rfly;
using namespace rfly::core;

namespace {

void run_scene(const char* title, int shelf_rows, std::uint64_t seed,
               double paper_error_hint_m) {
  std::printf("\n--- %s ---\n", title);

  SystemConfig sys_cfg;
  channel::Environment env;
  if (shelf_rows > 0) {
    // Steel shelf rows flanking the scene (strong reflectors).
    env.add_obstacle({{{-2.0, -1.2}, {5.0, -1.2}}, channel::steel_shelf()});
    env.add_obstacle({{{-2.0, 2.6}, {5.0, 2.6}}, channel::steel_shelf()});
  }
  const Vec3 reader_pos{-8.0, 1.0, 1.0};
  RflySystem system(sys_cfg, env, reader_pos);

  const Vec3 tag{1.4, 0.9, 0.0};
  Rng rng(seed);
  const auto plan = drone::linear_trajectory({0.0, -0.4, 1.0}, {2.8, -0.35, 1.0}, 50);
  const auto flight =
      drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);
  const auto measurements = system.collect_measurements(flight, tag, rng);
  std::printf("measurements: %zu\n", measurements.size());

  localize::LocalizerConfig loc;
  loc.freq_hz = sys_cfg.carrier_hz + sys_cfg.freq_shift_hz;
  loc.grid = {-0.5, 3.0, -0.5, 2.0, 0.02};
  loc.multires = false;
  loc.peak_threshold_fraction = 0.4;
  const auto result = localize::localize_2d(measurements, loc);
  if (!result) {
    std::printf("localization failed\n");
    return;
  }
  const double err = std::hypot(result->x - tag.x, result->y - tag.y);

  // Render the heatmap.
  const auto iso = localize::disentangle(measurements);
  localize::GridSpec render = loc.grid;
  render.resolution_m = 0.07;
  const auto map = localize::sar_heatmap(iso, render, loc.freq_hz);
  const double peak = map.max_value();
  static const char kShades[] = " .:-=+*#%@";
  for (std::size_t iy = render.ny(); iy-- > 0;) {
    std::printf("  ");
    for (std::size_t ix = 0; ix < render.nx(); ++ix) {
      const double x = render.x_at(ix);
      const double y = render.y_at(iy);
      char c = kShades[static_cast<int>(9.0 * map.at(ix, iy) / peak)];
      if (std::abs(y - (-0.4)) < 0.05 && x >= 0.0 && x <= 2.8) c = '=';
      if (std::hypot(x - tag.x, y - tag.y) < 0.06) c = 'T';
      if (std::hypot(x - result->x, y - result->y) < 0.06) c = 'X';
      std::putchar(c);
    }
    std::printf("\n");
  }
  std::printf("legend: T true tag, X estimate, = flight path; error %.3f m\n", err);
  std::printf("candidate peaks considered: %zu\n", result->candidates.size());
  bench::paper_vs_ours("localization error in this scene [m]",
                       shelf_rows > 0 ? "(sub-meter, nearest-peak)" : "<0.07",
                       err, "m");
  (void)paper_error_hint_m;
}

/// Time the SAR engine at each thread count on the fig06-sized grid and
/// emit BENCH_sar.json. Parity against the serial heatmap is checked on
/// every run so a perf regression can never hide a correctness one.
void thread_sweep(std::uint64_t seed) {
  std::printf("\n--- SAR engine thread sweep (fig06-sized grid) ---\n");

  SystemConfig sys_cfg;
  const Vec3 reader_pos{-8.0, 1.0, 1.0};
  RflySystem system(sys_cfg, channel::Environment{}, reader_pos);
  const Vec3 tag{1.4, 0.9, 0.0};
  Rng rng(seed);
  const auto plan = drone::linear_trajectory({0.0, -0.4, 1.0}, {2.8, -0.35, 1.0}, 50);
  const auto flight =
      drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);
  const auto measurements = system.collect_measurements(flight, tag, rng);
  const auto iso = localize::disentangle(measurements);
  const double freq = sys_cfg.carrier_hz + sys_cfg.freq_shift_hz;
  const localize::GridSpec grid{-0.5, 3.0, -0.5, 2.0, 0.02};

  const auto time_ms = [&](unsigned threads) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto map = localize::sar_heatmap(iso, grid, freq, 0.0, threads);
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (map.values.empty()) std::printf("unexpected empty heatmap\n");
    }
    return best;
  };

  const auto serial_map = localize::sar_heatmap(iso, grid, freq, 0.0, 1);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned sweep[] = {1, 2, 4, 8};
  const double serial_ms = time_ms(1);

  FILE* json = std::fopen("BENCH_sar.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n  \"bench\": \"sar_heatmap\",\n"
                 "  \"grid\": {\"nx\": %zu, \"ny\": %zu, \"cells\": %zu},\n"
                 "  \"measurements\": %zu,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"results\": [\n",
                 grid.nx(), grid.ny(), grid.nx() * grid.ny(), iso.channels.size(), hw);
  }
  std::printf("  %-8s %12s %10s %22s\n", "threads", "best [ms]", "speedup",
              "max |diff| vs serial");
  for (std::size_t i = 0; i < std::size(sweep); ++i) {
    const unsigned threads = sweep[i];
    const double ms = threads == 1 ? serial_ms : time_ms(threads);
    const auto map = localize::sar_heatmap(iso, grid, freq, 0.0, threads);
    double max_diff = 0.0;
    for (std::size_t c = 0; c < map.values.size(); ++c) {
      max_diff = std::max(max_diff, std::abs(map.values[c] - serial_map.values[c]));
    }
    const double speedup = serial_ms / ms;
    std::printf("  %-8u %12.3f %9.2fx %22.3g\n", threads, ms, speedup, max_diff);
    if (json) {
      std::fprintf(json,
                   "    {\"threads\": %u, \"best_ms\": %.6f, \"speedup\": %.4f, "
                   "\"max_abs_diff_vs_serial\": %.3g}%s\n",
                   threads, ms, speedup, max_diff,
                   i + 1 < std::size(sweep) ? "," : "");
    }
  }
  if (json) {
    // The obs snapshot rides along so machine readers see how much work the
    // sweep did (sar.cells, pool.chunks, chunk latency buckets). Empty
    // objects under RFLY_OBS=OFF.
    std::fprintf(json, "  ],\n  \"metrics\": %s\n}\n",
                 obs::metrics_to_json(obs::snapshot()).c_str());
    std::fclose(json);
    std::printf("wrote BENCH_sar.json\n");
  }
  bench::paper_vs_ours("SAR heatmap speedup at 8 threads", "(n/a: ours)",
                       serial_ms / time_ms(8), "x");
}

}  // namespace

int main() {
  bench::header("Fig. 6", "P(x,y) heatmaps: line-of-sight vs strong multipath");
  run_scene("(a) line of sight", 0, 31, 0.07);
  run_scene("(b) strong multipath (steel shelves)", 2, 32, 0.2);
  thread_sweep(33);
  return 0;
}
