// Fig. 6 — P(x, y) localization heatmaps: (a) line-of-sight, (b) strong
// multipath from steel shelves. Rendered as ASCII intensity maps with the
// true tag (T), the chosen estimate (X), and the flight path (=) marked.
//
// Also sweeps the SAR engine's thread count on the fig06-sized problem and
// writes BENCH_sar.json (format documented in EXPERIMENTS.md) so the perf
// trajectory of the hottest kernel is tracked from run to run.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/system.h"
#include "drone/flight.h"
#include "drone/trajectory.h"
#include "localize/localizer.h"

using namespace rfly;
using namespace rfly::core;

namespace {

void run_scene(const char* title, int shelf_rows, std::uint64_t seed,
               double paper_error_hint_m) {
  std::printf("\n--- %s ---\n", title);

  SystemConfig sys_cfg;
  channel::Environment env;
  if (shelf_rows > 0) {
    // Steel shelf rows flanking the scene (strong reflectors).
    env.add_obstacle({{{-2.0, -1.2}, {5.0, -1.2}}, channel::steel_shelf()});
    env.add_obstacle({{{-2.0, 2.6}, {5.0, 2.6}}, channel::steel_shelf()});
  }
  const Vec3 reader_pos{-8.0, 1.0, 1.0};
  RflySystem system(sys_cfg, env, reader_pos);

  const Vec3 tag{1.4, 0.9, 0.0};
  Rng rng(seed);
  const auto plan = drone::linear_trajectory({0.0, -0.4, 1.0}, {2.8, -0.35, 1.0}, 50);
  const auto flight =
      drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);
  const auto measurements = system.collect_measurements(flight, tag, rng);
  std::printf("measurements: %zu\n", measurements.size());

  localize::LocalizerConfig loc;
  loc.freq_hz = sys_cfg.carrier_hz + sys_cfg.freq_shift_hz;
  loc.grid = {-0.5, 3.0, -0.5, 2.0, 0.02};
  loc.multires = false;
  loc.peak_threshold_fraction = 0.4;
  const auto result = localize::localize_2d(measurements, loc);
  if (!result) {
    std::printf("localization failed\n");
    return;
  }
  const double err = std::hypot(result->x - tag.x, result->y - tag.y);

  // Render the heatmap.
  const auto iso = localize::disentangle(measurements);
  localize::GridSpec render = loc.grid;
  render.resolution_m = 0.07;
  const auto map = localize::sar_heatmap(iso, render, loc.freq_hz);
  const double peak = map.max_value();
  static const char kShades[] = " .:-=+*#%@";
  for (std::size_t iy = render.ny(); iy-- > 0;) {
    std::printf("  ");
    for (std::size_t ix = 0; ix < render.nx(); ++ix) {
      const double x = render.x_at(ix);
      const double y = render.y_at(iy);
      char c = kShades[static_cast<int>(9.0 * map.at(ix, iy) / peak)];
      if (std::abs(y - (-0.4)) < 0.05 && x >= 0.0 && x <= 2.8) c = '=';
      if (std::hypot(x - tag.x, y - tag.y) < 0.06) c = 'T';
      if (std::hypot(x - result->x, y - result->y) < 0.06) c = 'X';
      std::putchar(c);
    }
    std::printf("\n");
  }
  std::printf("legend: T true tag, X estimate, = flight path; error %.3f m\n", err);
  std::printf("candidate peaks considered: %zu\n", result->candidates.size());
  bench::paper_vs_ours("localization error in this scene [m]",
                       shelf_rows > 0 ? "(sub-meter, nearest-peak)" : "<0.07",
                       err, "m");
  (void)paper_error_hint_m;
}

/// Time the batched polynomial sincos of every compiled kernel variant
/// against scalar libm on the same arguments, reporting ns/op and the max
/// absolute error vs long-double references. Returns the JSON array body
/// for BENCH_sar.json's "sincos" key.
std::string sincos_sweep() {
  std::printf("\n--- sincos microbench (batched polynomial vs libm) ---\n");
  constexpr std::size_t kN = 4096;
  constexpr int kReps = 200;
  std::vector<double> x(kN), s(kN), c(kN);
  Rng rng(117);
  // SAR-shaped arguments: k*d for the fig06 geometry stays well inside the
  // [-1e4, 1e4] band; the accuracy sweep in tests/test_sar_kernel.cpp
  // covers |x| <= 1e6.
  for (auto& v : x) v = rng.uniform(-1e4, 1e4);

  const auto time_ns_per_op = [&](auto&& body) {
    double best = 1e300;
    for (int outer = 0; outer < 3; ++outer) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) body();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double, std::nano>(t1 - t0)
                                .count() /
                                (kReps * kN));
    }
    return best;
  };
  const auto max_err = [&]() {
    double worst = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      worst = std::max(worst, std::abs(s[i] - static_cast<double>(sinl(
                                                  static_cast<long double>(x[i])))));
      worst = std::max(worst, std::abs(c[i] - static_cast<double>(cosl(
                                                  static_cast<long double>(x[i])))));
    }
    return worst;
  };

  // JSON fragments go through the shared emitters (common/json.h): strings
  // escaped, non-finite values (a sincos variant returning NaN would make
  // max_abs_err NaN) serialized as null instead of the invalid `nan` token.
  std::string json;
  const double libm_ns = time_ns_per_op([&] {
    for (std::size_t i = 0; i < kN; ++i) {
      s[i] = std::sin(x[i]);
      c[i] = std::cos(x[i]);
    }
  });
  std::printf("  %-10s %10.2f ns/op   max abs err %.3g\n", "libm", libm_ns,
              max_err());
  json += "    {\"impl\": \"libm\", \"ns_per_op\": " + json_number(libm_ns) +
          ", \"max_abs_err\": " + json_number(max_err()) + "},\n";

  const auto& variants = localize::sar_kernel_variants();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& v = variants[i];
    if (!v.supported) continue;
    const double ns =
        time_ns_per_op([&] { v.sincos(x.data(), s.data(), c.data(), kN); });
    v.sincos(x.data(), s.data(), c.data(), kN);
    const double err = max_err();
    std::printf("  %-10s %10.2f ns/op   max abs err %.3g   (%.1fx vs libm)\n",
                v.isa, ns, err, libm_ns / ns);
    json += "    {\"impl\": " + json_quote(v.isa) +
            ", \"ns_per_op\": " + json_number(ns) +
            ", \"max_abs_err\": " + json_number(err) + "}" +
            (i + 1 < variants.size() ? "," : "") + "\n";
  }
  if (!json.empty() && json[json.size() - 2] == ',') {
    json.erase(json.size() - 2, 1);  // trailing comma if last variant skipped
  }
  return json;
}

/// Time localize_3d at each search strategy (brute-force exact, incremental
/// accumulator, coarse-to-fine) on a two-altitude aperture, verifying that
/// every strategy lands on the same volume cell before reporting speed.
/// Returns the JSON object body for BENCH_sar.json's "localize_3d" key.
std::string search_sweep_3d(std::uint64_t seed) {
  std::printf("\n--- localize_3d search-strategy sweep (two-row aperture) ---\n");

  SystemConfig sys_cfg;
  const RflySystem system(sys_cfg, channel::Environment{}, {0, 0, 1});
  Rng rng(seed);
  const Vec3 tag{12.0, 6.0, 0.4};
  std::vector<Vec3> plan;
  for (double z : {1.2, 1.8}) {
    const auto row = drone::linear_trajectory({tag.x - 1.2, 8.0, z},
                                              {tag.x + 1.2, 8.15, z}, 25);
    plan.insert(plan.end(), row.begin(), row.end());
  }
  const auto flight =
      drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);
  const auto measurements = system.collect_measurements(flight, tag, rng);

  localize::Volume vol;
  vol.x_min = tag.x - 1.5;
  vol.x_max = tag.x + 1.5;
  vol.y_min = tag.y - 1.5;
  vol.y_max = tag.y + 1.2;
  vol.z_min = 0.0;
  vol.z_max = 1.2;
  vol.resolution_m = 0.05;

  localize::Localize3dConfig cfg;
  cfg.freq_hz = sys_cfg.carrier_hz + sys_cfg.freq_shift_hz;
  cfg.threads = 1;  // serial on every path: algorithmic speedup, not threads
  cfg.kernel = localize::SarKernel::kFast;

  const auto time_ms = [&](localize::SarSearch search) {
    cfg.search = search;
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = localize::localize_3d(measurements, vol, cfg);
      const auto t1 = std::chrono::steady_clock::now();
      if (!result) std::printf("unexpected localize_3d failure\n");
      best = std::min(best,
                      std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return best;
  };
  const auto position = [&](localize::SarSearch search) {
    cfg.search = search;
    const auto result = localize::localize_3d(measurements, vol, cfg);
    return result ? result->position : Vec3{};
  };

  const auto exact_pos = position(localize::SarSearch::kExact);
  const double exact_ms = time_ms(localize::SarSearch::kExact);
  std::string json = "{\n";
  const localize::SarSearch searches[] = {localize::SarSearch::kExact,
                                          localize::SarSearch::kIncremental,
                                          localize::SarSearch::kCoarseToFine};
  std::printf("  %-12s %12s %10s %22s\n", "search", "best [ms]", "speedup",
              "max |pos diff| vs exact");
  for (std::size_t i = 0; i < std::size(searches); ++i) {
    const auto search = searches[i];
    const double ms =
        search == localize::SarSearch::kExact ? exact_ms : time_ms(search);
    const auto pos = position(search);
    const double diff = std::max({std::abs(pos.x - exact_pos.x),
                                  std::abs(pos.y - exact_pos.y),
                                  std::abs(pos.z - exact_pos.z)});
    std::printf("  %-12s %12.3f %9.2fx %22.3g\n",
                localize::sar_search_name(search), ms, exact_ms / ms, diff);
    json += "    " + json_quote(localize::sar_search_name(search)) +
            ": {\"best_ms\": " + json_number(ms) +
            ", \"speedup\": " + json_number(exact_ms / ms) +
            ", \"max_pos_diff_vs_exact\": " + json_number(diff) + "}" +
            (i + 1 < std::size(searches) ? "," : "") + "\n";
  }
  json += "  }";
  bench::paper_vs_ours("localize_3d coarse2fine speedup, 1 thread", "(n/a: ours)",
                       exact_ms / time_ms(localize::SarSearch::kCoarseToFine),
                       "x");
  return json;
}

/// Time the SAR engine at each kernel x thread-count point on the
/// fig06-sized grid and emit BENCH_sar.json. Parity against the serial
/// exact heatmap is checked on every run so a perf regression can never
/// hide a correctness one: exact must match bit-for-bit at every thread
/// count, fast within a tight absolute band.
void kernel_thread_sweep(std::uint64_t seed) {
  std::printf("\n--- SAR engine kernel x thread sweep (fig06-sized grid) ---\n");

  SystemConfig sys_cfg;
  const Vec3 reader_pos{-8.0, 1.0, 1.0};
  RflySystem system(sys_cfg, channel::Environment{}, reader_pos);
  const Vec3 tag{1.4, 0.9, 0.0};
  Rng rng(seed);
  const auto plan = drone::linear_trajectory({0.0, -0.4, 1.0}, {2.8, -0.35, 1.0}, 50);
  const auto flight =
      drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);
  const auto measurements = system.collect_measurements(flight, tag, rng);
  const auto iso = localize::disentangle(measurements);
  const double freq = sys_cfg.carrier_hz + sys_cfg.freq_shift_hz;
  const localize::GridSpec grid{-0.5, 3.0, -0.5, 2.0, 0.02};

  const auto time_ms = [&](unsigned threads, localize::SarKernel kernel) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto map = localize::sar_heatmap(iso, grid, freq, 0.0, threads, kernel);
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (map.values.empty()) std::printf("unexpected empty heatmap\n");
    }
    return best;
  };

  const auto serial_map =
      localize::sar_heatmap(iso, grid, freq, 0.0, 1, localize::SarKernel::kExact);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned sweep[] = {1, 2, 4, 8};
  const localize::SarKernel kernels[] = {localize::SarKernel::kExact,
                                         localize::SarKernel::kFast};
  const double serial_exact_ms = time_ms(1, localize::SarKernel::kExact);

  const std::string sincos_json = sincos_sweep();
  const std::string search_json = search_sweep_3d(seed + 1);

  FILE* json = std::fopen("BENCH_sar.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n  \"bench\": \"sar_heatmap\",\n"
                 "  \"grid\": {\"nx\": %zu, \"ny\": %zu, \"cells\": %zu},\n"
                 "  \"measurements\": %zu,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"active_isa\": %s,\n"
                 "  \"results\": [\n",
                 grid.nx(), grid.ny(), grid.nx() * grid.ny(), iso.channels.size(),
                 hw, json_quote(localize::sar_kernel_active().isa).c_str());
  }
  std::printf("\n  %-7s %-8s %12s %10s %26s\n", "kernel", "threads", "best [ms]",
              "speedup", "max |diff| vs serial exact");
  double fast_serial_ms = serial_exact_ms;
  for (std::size_t ki = 0; ki < std::size(kernels); ++ki) {
    const localize::SarKernel kernel = kernels[ki];
    const bool exact = kernel == localize::SarKernel::kExact;
    for (std::size_t i = 0; i < std::size(sweep); ++i) {
      const unsigned threads = sweep[i];
      const double ms = (exact && threads == 1) ? serial_exact_ms
                                                : time_ms(threads, kernel);
      if (!exact && threads == 1) fast_serial_ms = ms;
      const auto map = localize::sar_heatmap(iso, grid, freq, 0.0, threads, kernel);
      double max_diff = 0.0;
      for (std::size_t c = 0; c < map.values.size(); ++c) {
        max_diff = std::max(max_diff, std::abs(map.values[c] - serial_map.values[c]));
      }
      const double speedup = serial_exact_ms / ms;
      std::printf("  %-7s %-8u %12.3f %9.2fx %26.3g\n",
                  localize::sar_kernel_name(kernel), threads, ms, speedup, max_diff);
      if (json) {
        std::fprintf(json, "    {\"kernel\": %s, \"threads\": %u, \"best_ms\": %s, "
                     "\"speedup\": %s, \"max_abs_diff_vs_serial\": %s}%s\n",
                     json_quote(localize::sar_kernel_name(kernel)).c_str(),
                     threads, json_number(ms).c_str(), json_number(speedup).c_str(),
                     json_number(max_diff).c_str(),
                     ki + 1 < std::size(kernels) || i + 1 < std::size(sweep) ? ","
                                                                             : "");
      }
    }
  }
  if (json) {
    // The obs snapshot rides along so machine readers see how much work the
    // sweep did (sar.cells, kernel dispatch counts, chunk latency buckets).
    // Empty objects under RFLY_OBS=OFF.
    std::fprintf(json,
                 "  ],\n  \"sincos\": [\n%s  ],\n  \"localize_3d\": %s,\n"
                 "  \"metrics\": %s\n}\n",
                 sincos_json.c_str(), search_json.c_str(),
                 obs::metrics_to_json(obs::snapshot()).c_str());
    std::fclose(json);
    std::printf("wrote BENCH_sar.json\n");
  }
  bench::paper_vs_ours("SAR fast-kernel speedup, 1 thread", "(n/a: ours)",
                       serial_exact_ms / fast_serial_ms, "x");
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions options;
  if (!options.parse(argc, argv)) return 1;
  bench::header("Fig. 6", "P(x,y) heatmaps: line-of-sight vs strong multipath");
  run_scene("(a) line of sight", 0, 31, 0.07);
  run_scene("(b) strong multipath (steel shelves)", 2, 32, 0.2);
  kernel_thread_sweep(33);
  return 0;
}
