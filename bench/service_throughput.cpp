// Mission-service throughput: what the daemon costs over direct run_batch,
// and what the content-addressed result cache buys. Three phases over the
// same job list (warehouse preset, distinct seeds):
//
//   direct       run_batch in-process — the ceiling.
//   socket cold  every job submitted over the loopback wire protocol to an
//                in-process rflyd, result fetched back; empty cache, so
//                every job simulates (protocol + queue + codec overhead).
//   socket warm  the identical submissions again — all served from the
//                result cache, zero simulations (pure service overhead).
//
// Emits BENCH_service.json. `--trials` is the job count, `--threads` the
// per-job run_batch thread count, `--out` an optional metrics copy.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "service/client.h"
#include "service/server.h"
#include "sim/batch.h"

using namespace rfly;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Phase {
  double seconds = 0.0;
  double jobs_per_second = 0.0;
  std::size_t cached = 0;
};

std::string phase_json(const Phase& phase) {
  return "{\"seconds\": " + json_number(phase.seconds) +
         ", \"jobs_per_second\": " + json_number(phase.jobs_per_second) +
         ", \"cache_served\": " + std::to_string(phase.cached) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.trials = 24;
  if (!opts.parse(argc, argv)) return 2;
  const std::size_t jobs_n =
      opts.trials > 0 ? static_cast<std::size_t>(opts.trials) : 24;

  bench::header("BENCH service", "daemon overhead & result-cache throughput");

  auto scenario = *sim::preset("warehouse");
  scenario.sar_kernel = opts.kernel;
  std::vector<sim::BatchJob> jobs;
  jobs.reserve(jobs_n);
  for (std::size_t i = 0; i < jobs_n; ++i) {
    jobs.push_back({scenario, stream_seed(opts.seed, i)});
  }

  // Phase 1: the in-process ceiling over the identical job list.
  Phase direct;
  {
    const auto start = Clock::now();
    const auto results = sim::run_batch(jobs, {opts.threads});
    direct.seconds = seconds_since(start);
    for (const auto& result : results) {
      if (!result.status.is_ok()) {
        std::fprintf(stderr, "direct job failed: %s\n",
                     result.status.to_string().c_str());
        return 1;
      }
    }
  }
  direct.jobs_per_second = static_cast<double>(jobs_n) / direct.seconds;

  // One in-process daemon for both socket phases: one executor (the jobs
  // themselves parallelize via job_threads), queue sized so nothing is
  // rejected — this bench measures throughput, not backpressure.
  service::ServiceConfig config;
  config.workers = 1;
  config.job_threads = opts.threads;
  config.queue_capacity = jobs_n + 8;
  config.cache_capacity = jobs_n + 8;
  service::MissionService daemon(config);
  if (Status status = daemon.start(); !status.is_ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  auto connected = service::Client::connect(daemon.port());
  if (!connected) {
    std::fprintf(stderr, "%s\n", connected.status().to_string().c_str());
    return 1;
  }
  service::Client client = std::move(connected.value());

  auto socket_phase = [&](Phase& phase) -> bool {
    std::vector<std::uint64_t> ids;
    ids.reserve(jobs_n);
    const auto start = Clock::now();
    for (const auto& job : jobs) {
      auto ack = client.submit(sim::serialize(job.scenario), job.seed);
      if (!ack) {
        std::fprintf(stderr, "submit: %s\n", ack.status().to_string().c_str());
        return false;
      }
      if (ack->cached) ++phase.cached;
      ids.push_back(ack->job_id);
    }
    for (std::uint64_t id : ids) {
      auto result = client.result(id, /*wait=*/true);
      if (!result) {
        std::fprintf(stderr, "result: %s\n",
                     result.status().to_string().c_str());
        return false;
      }
      if (!result->status.is_ok()) {
        std::fprintf(stderr, "socket job failed: %s\n",
                     result->status.to_string().c_str());
        return false;
      }
    }
    phase.seconds = seconds_since(start);
    phase.jobs_per_second = static_cast<double>(jobs_n) / phase.seconds;
    return true;
  };

  Phase cold;
  if (!socket_phase(cold)) return 1;
  Phase warm;
  if (!socket_phase(warm)) return 1;

  const service::ServiceStats stats = daemon.stats();
  client.shutdown(/*drain=*/true);
  daemon.wait();

  std::printf("\n  %-14s %10s %14s %14s\n", "phase", "seconds", "jobs/s",
              "cache-served");
  std::printf("  %-14s %10.3f %14.1f %14s\n", "direct", direct.seconds,
              direct.jobs_per_second, "-");
  std::printf("  %-14s %10.3f %14.1f %11zu/%zu\n", "socket cold", cold.seconds,
              cold.jobs_per_second, cold.cached, jobs_n);
  std::printf("  %-14s %10.3f %14.1f %11zu/%zu\n", "socket warm", warm.seconds,
              warm.jobs_per_second, warm.cached, jobs_n);
  std::printf("\n  socket cold vs direct: %.2fx slower; warm vs cold: %.1fx "
              "faster; %llu simulation(s) for %zu submissions\n",
              direct.jobs_per_second / cold.jobs_per_second,
              warm.jobs_per_second / cold.jobs_per_second,
              static_cast<unsigned long long>(stats.simulated), 2 * jobs_n);
  bench::paper_vs_ours("service warm-cache speedup vs cold", "(n/a: ours)",
                       warm.jobs_per_second / cold.jobs_per_second, "x");

  if (warm.cached != jobs_n || stats.simulated != jobs_n) {
    std::fprintf(stderr,
                 "cache contract violated: %zu/%zu warm submissions cached, "
                 "%llu simulations for %zu distinct jobs\n",
                 warm.cached, jobs_n,
                 static_cast<unsigned long long>(stats.simulated), jobs_n);
    return 1;
  }

  FILE* json = std::fopen("BENCH_service.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n  \"bench\": \"service_throughput\",\n"
        "  \"scenario\": %s,\n  \"jobs\": %zu,\n  \"job_threads\": %u,\n"
        "  \"kernel\": %s,\n  \"direct\": %s,\n  \"socket_cold\": %s,\n"
        "  \"socket_warm\": %s,\n"
        "  \"stats\": {\"submitted\": %llu, \"simulated\": %llu, "
        "\"cache_hits\": %llu, \"cache_misses\": %llu, \"rejected\": %llu}\n"
        "}\n",
        json_quote(scenario.name).c_str(), jobs_n, opts.threads,
        json_quote(localize::sar_kernel_name(opts.kernel)).c_str(),
        phase_json(direct).c_str(), phase_json(cold).c_str(),
        phase_json(warm).c_str(),
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.simulated),
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_misses),
        static_cast<unsigned long long>(stats.rejected));
    std::fclose(json);
    std::printf("wrote BENCH_service.json\n");
  }

  bench::Metrics metrics;
  metrics.add("jobs", static_cast<double>(jobs_n));
  metrics.add("direct_jobs_per_second", direct.jobs_per_second);
  metrics.add("socket_cold_jobs_per_second", cold.jobs_per_second);
  metrics.add("socket_warm_jobs_per_second", warm.jobs_per_second);
  if (!bench::finish_observability(opts, metrics)) return 1;
  return metrics.write(opts.out) ? 0 : 1;
}
