// rflyd — the mission service daemon. Binds 127.0.0.1, accepts mission
// jobs over the versioned wire protocol (src/service/wire.h), runs them on
// a bounded async queue over the shared deterministic thread pool, and
// serves repeated (scenario, seed) submissions from the content-addressed
// result cache. Stops on SIGINT/SIGTERM (drains the queue first) or on a
// client SHUTDOWN command.
//
//   rflyd                           # ephemeral port, printed at startup
//   rflyd --port 7316 --workers 2   # fixed port, two executor threads
//   rflyd --queue-capacity 128 --cache-capacity 512 --job-threads 4
#include <csignal>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "service/server.h"

using namespace rfly;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--job-threads N] "
               "[--queue-capacity N] [--cache-capacity N] "
               "[--retry-after-ms N]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  service::ServiceConfig config;
  auto fail = [&](const Status& status) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    usage(argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    Status status = Status::ok();
    if (arg == "--port" && value != nullptr) {
      status = bench::parse_cli_number(arg, value, config.port);
    } else if (arg == "--workers" && value != nullptr) {
      status = bench::parse_cli_number(arg, value, config.workers);
    } else if (arg == "--job-threads" && value != nullptr) {
      status = bench::parse_cli_number(arg, value, config.job_threads);
    } else if (arg == "--queue-capacity" && value != nullptr) {
      status = bench::parse_cli_number(arg, value, config.queue_capacity);
    } else if (arg == "--cache-capacity" && value != nullptr) {
      status = bench::parse_cli_number(arg, value, config.cache_capacity);
    } else if (arg == "--retry-after-ms" && value != nullptr) {
      status = bench::parse_cli_number(arg, value, config.retry_after_ms);
    } else {
      return fail({StatusCode::kParseError, "unknown argument '" + arg + "'"});
    }
    if (!status.is_ok()) return fail(status);
    ++i;  // every flag takes a value
  }

  // Signals are delivered to a dedicated sigwait thread: a handler cannot
  // safely wake the service's condition variables, but a thread can. The
  // thread is detached — when a remote SHUTDOWN ends wait() instead, the
  // process exits and takes it along.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  service::MissionService daemon(config);
  if (Status status = daemon.start(); !status.is_ok()) {
    std::fprintf(stderr, "%s\n", status.to_string().c_str());
    return 1;
  }
  std::thread([&daemon, signals] {
    int sig = 0;
    sigwait(&signals, &sig);
    std::fprintf(stderr, "rflyd: signal %d, draining\n", sig);
    daemon.request_shutdown(/*drain=*/true);
  }).detach();

  std::printf("rflyd listening on 127.0.0.1:%u (workers %u, queue %zu, "
              "cache %zu)\n",
              daemon.port(), config.workers, config.queue_capacity,
              config.cache_capacity);
  std::fflush(stdout);

  daemon.wait();
  const service::ServiceStats stats = daemon.stats();
  std::printf("rflyd: stopped; %llu submitted, %llu completed, %llu "
              "simulated, %llu cache hit(s), %llu rejected, %llu cancelled\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.simulated),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.cancelled));
  return 0;
}
