// Section 4.2 — Streaming center-frequency discovery: lock accuracy and
// time across SNR and with competing readers, against the paper's 20 ms
// sweep budget.
#include <cstdio>

#include "bench_util.h"
#include "common/units.h"
#include "relay/freq_discovery.h"
#include "signal/noise.h"

using namespace rfly;
using namespace rfly::relay;

int main() {
  bench::header("Sec. 4.2", "center-frequency discovery: lock rate and time");

  const double fs = 8e6;
  const auto grid = channel_grid(-3e6, 3e6, 500e3);
  const std::size_t n = static_cast<std::size_t>(0.02 * fs);

  std::printf("  snr_db   lock_rate_%%   mean_lock_ms   accuracy_%%\n");
  for (double snr_db : {30.0, 20.0, 10.0, 5.0, 0.0, -5.0}) {
    int locks = 0;
    int correct = 0;
    double lock_time = 0.0;
    constexpr int kTrials = 40;
    Rng rng(17);
    for (int t = 0; t < kTrials; ++t) {
      const double true_freq =
          grid[static_cast<std::size_t>(rng.uniform_int(0, 12))];
      const double carrier_power = 1e-9;
      auto rx = signal::make_tone(true_freq, std::sqrt(carrier_power), n, fs,
                                  rng.phase());
      signal::add_awgn(rx, carrier_power / from_db(snr_db) * (fs / 500e3), rng);
      const auto result = discover_center_frequency(rx, grid);
      if (result.locked) {
        ++locks;
        lock_time += result.elapsed_s;
        if (result.freq_hz == true_freq) ++correct;
      }
    }
    std::printf("  %6.0f   %11.0f   %12.2f   %10.0f\n", snr_db,
                100.0 * locks / kTrials,
                locks > 0 ? 1e3 * lock_time / locks : 0.0,
                locks > 0 ? 100.0 * correct / locks : 0.0);
  }

  // Two-reader interference management: the stronger reader must win.
  int strong_wins = 0;
  constexpr int kTrials = 40;
  Rng rng(18);
  for (int t = 0; t < kTrials; ++t) {
    const double f_strong = grid[static_cast<std::size_t>(rng.uniform_int(0, 12))];
    double f_weak = f_strong;
    while (f_weak == f_strong) {
      f_weak = grid[static_cast<std::size_t>(rng.uniform_int(0, 12))];
    }
    auto rx = signal::make_tone(f_strong, 1e-4, n, fs, rng.phase());
    rx.accumulate(signal::make_tone(f_weak, 4e-5, n, fs, rng.phase()));
    const auto result = discover_center_frequency(rx, grid);
    if (result.locked && result.freq_hz == f_strong) ++strong_wins;
  }
  std::printf("\ntwo readers (8 dB apart): strongest wins %.0f%% of trials\n",
              100.0 * strong_wins / kTrials);

  bench::paper_vs_ours("sweep budget [ms]", "20", 20.0, "ms (enforced cap)");
  bench::paper_vs_ours("multi-reader rule", "strongest reader wins",
                       100.0 * strong_wins / kTrials, "% of trials");
  return 0;
}
