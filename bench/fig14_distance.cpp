// Fig. 14 — Localization accuracy vs projected distance from the reader.
// Methodology per paper Section 7.3(b): the reader's transmit power is
// stepped down and mapped to a projected distance through the free-space
// model; 50 experiments, aperture fixed at 1 m; SAR vs RSSI.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/path_loss.h"
#include "core/experiments.h"

using namespace rfly;
using namespace rfly::core;

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.trials = 50 / 10 + 4;  // ~9 per point, ~90 total (paper: 50)
  opts.seed = 881;            // placement stream
  if (!opts.parse(argc, argv)) return 2;

  bench::header("Fig. 14", "localization error vs projected distance (SAR vs RSSI)");

  // The physical bench sits at a fixed 5 m with reduced EIRP; projected
  // distance d satisfies FSPL(d) = FSPL(5 m) + (30 dBm - EIRP).
  const double base_distance = 5.0;
  const double base_eirp = 30.0;

  std::printf(
      "  proj_dist_m   eirp_dBm   snr_db   sar_p10   sar_med   sar_p90  rssi_med\n");
  double sar_at_40 = 0.0;
  double sar_p90_at_40 = 0.0;
  double sar_p90_at_50 = 0.0;
  for (double projected : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0}) {
    const double extra_loss_db = 20.0 * std::log10(projected / base_distance);
    const double eirp = base_eirp - extra_loss_db;

    std::vector<double> sar;
    std::vector<double> rssi;
    double snr_sum = 0.0;
    int snr_n = 0;
    Rng placement(opts.seed);
    const int trials = opts.trials;
    for (int t = 0; t < trials; ++t) {
      LocalizationTrialConfig cfg;
      cfg.system.reader_eirp_dbm = eirp;
      // Bench gain trim: the relay is tuned below PA saturation at the
      // 5 m bench distance (as in the paper's controlled microbenchmark),
      // so reducing the reader's transmit power maps 1:1 onto SNR.
      cfg.system.relay_downlink_gain_db = 45.0;
      cfg.shelf_rows = 0;
      cfg.reader_position = {10.0, 10.0, 1.0};
      cfg.tag_position = {15.0 + placement.uniform(-1.0, 1.0),
                          10.0 + placement.uniform(-1.0, 1.0), 0.0};
      cfg.aperture_m = 1.0;
      // Robot passes close to the tag (the paper controls the relay-tag
      // distance separately from the projected reader distance).
      cfg.flight_offset_y_m = 0.8;
      cfg.flight_altitude_m = 0.3;
      cfg.sar_kernel = opts.kernel;
      cfg.sar_search = opts.search;
      const auto result = run_localization_trial(
          cfg, 7000 + static_cast<std::uint64_t>(t) * 17 +
                   static_cast<std::uint64_t>(projected));
      if (!result.localized) continue;
      sar.push_back(result.sar_error_m);
      rssi.push_back(result.rssi_error_m);

      channel::Environment env;
      RflySystem probe(cfg.system, env, cfg.reader_position);
      snr_sum += probe.reply_snr_db(
          {cfg.tag_position.x, cfg.tag_position.y + cfg.flight_offset_y_m, 0.3},
          cfg.tag_position);
      ++snr_n;
    }
    const double snr = snr_n > 0 ? snr_sum / snr_n : 0.0;
    std::printf("  %11.0f   %8.1f   %6.1f   %7.3f   %7.3f   %7.3f  %8.3f\n",
                projected, eirp, snr, percentile(sar, 10), median(sar),
                percentile(sar, 90), median(rssi));
    if (projected == 40.0) {
      sar_at_40 = median(sar);
      sar_p90_at_40 = percentile(sar, 90);
    }
    if (projected == 50.0) sar_p90_at_50 = percentile(sar, 90);
  }

  std::printf("\n");
  bench::paper_vs_ours("SAR median error at 40 m projected [cm]", "<18",
                       100.0 * sar_at_40, "cm");
  bench::paper_vs_ours("SAR 90th pct at 40 m projected [cm]", "<24",
                       100.0 * sar_p90_at_40, "cm");
  bench::paper_vs_ours("SAR 90th pct beyond 50 m [cm]", "82",
                       100.0 * sar_p90_at_50, "cm");

  bench::Metrics metrics;
  metrics.add("sar_median_at_40m", sar_at_40);
  metrics.add("sar_p90_at_40m", sar_p90_at_40);
  metrics.add("sar_p90_at_50m", sar_p90_at_50);
  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  return 0;
}
