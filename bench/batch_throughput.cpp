// Batched-execution throughput: missions/sec on the warehouse preset as the
// batch grows 1 -> 10k identical (scenario, seed) jobs — the repeated-
// trajectory workload the shared measurement plane is built for. Batched
// mode dedups the localize tasks and sweeps one multi-tag plane per group,
// so the per-mission SAR cost amortizes across the batch; the per-mission
// reference points pin what the legacy path costs at the same sizes.
//
//   bench_batch_throughput                      # full ladder, both kernels
//   bench_batch_throughput --trials 100         # cap the largest batch
//   bench_batch_throughput --out BENCH_batch.json
//
// Single-threaded by default (the amortization claim is algorithmic, not a
// parallelism artifact); --threads widens both modes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/batch.h"

using namespace rfly;

namespace {

struct Point {
  std::size_t batch = 0;
  double missions_per_second = 0.0;
  sim::BatchRunInfo info;
};

Point run_point(const sim::Scenario& scenario, std::size_t batch,
                sim::BatchMode mode, const bench::CliOptions& opts) {
  std::vector<sim::BatchJob> jobs(batch, {scenario, scenario.seed});
  sim::BatchRunInfo info;
  const sim::BatchConfig config{opts.threads, mode, opts.cache_capacity};
  const auto results = sim::run_batch(jobs, config, &info);
  const auto summary = sim::summarize(results, info);
  if (summary.failed != 0) {
    std::fprintf(stderr, "batch of %zu: %zu job(s) FAILED\n", batch,
                 summary.failed);
  }
  return {batch, summary.missions_per_second, info};
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.threads = 1;  // see header comment; acceptance measures single-thread
  if (!opts.parse(argc, argv)) return 2;

  auto loaded = sim::preset("warehouse");
  if (!loaded) {
    std::fprintf(stderr, "%s\n", loaded.status().to_string().c_str());
    return 1;
  }
  sim::Scenario scenario = std::move(loaded.value());
  if (opts.seed != 1) scenario.seed = opts.seed;
  if (opts.search_explicit) scenario.sar_search = opts.search;
  scenario.localize_threads = opts.threads;

  std::vector<std::size_t> sizes{1, 10, 100, 1000, 10000};
  if (opts.trials > 0) {
    // --trials N caps the ladder (smoke runs); N joins it when absent so
    // `--trials 100` still ends exactly at 100.
    const auto cap = static_cast<std::size_t>(opts.trials);
    std::erase_if(sizes, [&](std::size_t s) { return s > cap; });
    if (sizes.empty() || sizes.back() != cap) sizes.push_back(cap);
  }
  const std::vector<std::size_t> reference_sizes{1, sizes.back() < 100 ? sizes.back() : 100};

  bench::header("BENCH batch", "cross-mission batched execution throughput");
  std::printf("warehouse preset, seed %llu, %u thread(s); identical jobs per batch\n\n",
              static_cast<unsigned long long>(scenario.seed), opts.threads);

  bench::Metrics metrics;
  for (const localize::SarKernel kernel :
       {localize::SarKernel::kExact, localize::SarKernel::kFast}) {
    scenario.sar_kernel = kernel;
    const std::string kname = localize::sar_kernel_name(kernel);

    std::printf("kernel %-5s  %-12s %10s %14s %12s %12s\n", kname.c_str(),
                "mode", "batch", "missions/s", "cache h/m", "arena KiB");
    double batched_mps_1 = 0.0, batched_mps_ref = 0.0;
    for (std::size_t batch : sizes) {
      const Point p = run_point(scenario, batch, sim::BatchMode::kBatched, opts);
      std::printf("              %-12s %10zu %14.2f %7llu/%-4llu %12.1f\n",
                  "batched", p.batch, p.missions_per_second,
                  static_cast<unsigned long long>(p.info.cache_hits),
                  static_cast<unsigned long long>(p.info.cache_misses),
                  static_cast<double>(p.info.arena_high_water_bytes) / 1024.0);
      metrics.add("batched_" + kname + "_mps_" + std::to_string(batch),
                  p.missions_per_second);
      if (batch == 1) batched_mps_1 = p.missions_per_second;
      if (batch == reference_sizes.back()) batched_mps_ref = p.missions_per_second;
      if (batch == sizes.back()) {
        metrics.add(kname + "_cache_hits", static_cast<double>(p.info.cache_hits));
        metrics.add(kname + "_cache_misses",
                    static_cast<double>(p.info.cache_misses));
        metrics.add(kname + "_arena_high_water_bytes",
                    static_cast<double>(p.info.arena_high_water_bytes));
        metrics.add(kname + "_deferred_tasks",
                    static_cast<double>(p.info.deferred_tasks));
        metrics.add(kname + "_distinct_tasks",
                    static_cast<double>(p.info.distinct_tasks));
      }
    }
    for (std::size_t batch : reference_sizes) {
      const Point p = run_point(scenario, batch, sim::BatchMode::kPerMission, opts);
      std::printf("              %-12s %10zu %14.2f %12s %12s\n", "per-mission",
                  p.batch, p.missions_per_second, "-", "-");
      metrics.add("per_mission_" + kname + "_mps_" + std::to_string(batch),
                  p.missions_per_second);
    }
    const double speedup =
        batched_mps_1 > 0.0 ? batched_mps_ref / batched_mps_1 : 0.0;
    std::printf("  batch %zu vs batch 1 (batched): %.2fx\n\n",
                reference_sizes.back(), speedup);
    metrics.add("speedup_" + kname + "_batch" +
                    std::to_string(reference_sizes.back()) + "_vs_1",
                speedup);
  }

  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  return 0;
}
