// Fig. 11 — Read rate vs reader-tag distance: no relay, relay in
// line-of-sight, and relay through a wall (non-line-of-sight). The paper's
// headline: without the relay the read rate hits zero by 10 m; with it the
// reader keeps a 100% read rate past 50 m LoS and ~75% at 55 m NLoS.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

using namespace rfly;
using namespace rfly::core;

int main() {
  bench::header("Fig. 11", "read rate vs distance (no relay / relay LoS / relay NLoS)");

  ReadRateConfig los;
  ReadRateConfig nlos;
  nlos.through_wall = true;

  std::printf("  distance_m   no_relay_%%   relay_LoS_%%   relay_NLoS_%%\n");
  double crossover_no_relay = 0.0;
  double relay_at_50 = 0.0;
  double nlos_at_55 = 0.0;
  for (double d : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0, 55.0, 60.0}) {
    const auto p_los = run_read_rate_point(los, d, 100 + static_cast<std::uint64_t>(d));
    const auto p_nlos =
        run_read_rate_point(nlos, d, 200 + static_cast<std::uint64_t>(d));
    std::printf("  %10.0f   %10.0f   %11.0f   %12.0f\n", d,
                100.0 * p_los.read_rate_no_relay, 100.0 * p_los.read_rate_with_relay,
                100.0 * p_nlos.read_rate_with_relay);
    if (p_los.read_rate_no_relay < 0.05 && crossover_no_relay == 0.0) {
      crossover_no_relay = d;
    }
    if (d == 50.0) relay_at_50 = p_los.read_rate_with_relay;
    if (d == 55.0) nlos_at_55 = p_nlos.read_rate_with_relay;
  }

  std::printf("\n");
  bench::paper_vs_ours("no-relay read rate reaches 0 by [m]", "10",
                       crossover_no_relay, "m");
  bench::paper_vs_ours("relay LoS read rate at 50 m [%]", "100",
                       100.0 * relay_at_50, "%");
  bench::paper_vs_ours("relay NLoS read rate at 55 m [%]", "75",
                       100.0 * nlos_at_55, "%");
  return 0;
}
