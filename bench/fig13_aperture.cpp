// Fig. 13 — Localization accuracy vs flight-path aperture, SAR vs the
// RSSI baseline. Methodology per paper Section 7.3(a): 20 experiments per
// point, relay on a ground robot ~5 m from the reader, fixed average
// relay-tag distance, aperture swept 0.5-2.5 m.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/experiments.h"

using namespace rfly;
using namespace rfly::core;

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.trials = 20;  // per aperture point, as in the paper
  opts.seed = 777;   // placement stream
  if (!opts.parse(argc, argv)) return 2;

  bench::header("Fig. 13", "localization error vs aperture (SAR vs RSSI)");
  const int kTrialsPerPoint = opts.trials;

  std::printf(
      "  aperture_m   sar_p10   sar_med   sar_p90   rssi_p10  rssi_med  rssi_p90\n");
  double sar_at_half = 0.0;
  double sar_at_1 = 0.0;
  double rssi_at_25 = 0.0;
  double sar_at_25 = 0.0;
  for (double aperture : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    std::vector<double> sar;
    std::vector<double> rssi;
    Rng placement(opts.seed);
    for (int t = 0; t < kTrialsPerPoint; ++t) {
      LocalizationTrialConfig cfg;
      cfg.shelf_rows = 2;  // the robot experiments ran amid lab clutter
      cfg.reader_position = {20.0, 15.0, 1.0};
      // Relay trajectory center ~5 m from the reader; tag near the path,
      // all inside the aisle between the shelf rows (y = 10 and 20).
      cfg.tag_position = {15.0 + placement.uniform(-0.5, 0.5),
                          13.5 + placement.uniform(-0.5, 0.5), 0.0};
      cfg.aperture_m = aperture;
      cfg.flight_offset_y_m = 1.5;
      cfg.flight_altitude_m = 0.3;  // iRobot Create, not a drone
      cfg.tracking = drone::optitrack_tracking();
      cfg.sar_kernel = opts.kernel;
      cfg.sar_search = opts.search;
      const auto result = run_localization_trial(
          cfg, 6000 + static_cast<std::uint64_t>(t) * 31 +
                   static_cast<std::uint64_t>(aperture * 10));
      if (!result.localized) continue;
      sar.push_back(result.sar_error_m);
      rssi.push_back(result.rssi_error_m);
    }
    std::printf("  %10.1f   %7.3f   %7.3f   %7.3f   %8.3f  %8.3f  %8.3f\n",
                aperture, percentile(sar, 10), median(sar), percentile(sar, 90),
                percentile(rssi, 10), median(rssi), percentile(rssi, 90));
    if (aperture == 0.5) sar_at_half = median(sar);
    if (aperture == 1.0) sar_at_1 = median(sar);
    if (aperture == 2.5) {
      rssi_at_25 = median(rssi);
      sar_at_25 = median(sar);
    }
  }

  std::printf("\n");
  bench::paper_vs_ours("SAR median error at 0.5 m aperture [cm]", "22",
                       100.0 * sar_at_half, "cm");
  bench::paper_vs_ours("SAR median error at 1 m aperture [cm]", "<5",
                       100.0 * sar_at_1, "cm");
  bench::paper_vs_ours("RSSI median error at 2.5 m aperture [m]", "~1",
                       rssi_at_25, "m");
  bench::paper_vs_ours("SAR advantage at 2.5 m aperture [x]", "20",
                       rssi_at_25 / (sar_at_25 > 0 ? sar_at_25 : 1e-9), "x");

  bench::Metrics metrics;
  metrics.add("sar_median_at_0p5m", sar_at_half);
  metrics.add("sar_median_at_1m", sar_at_1);
  metrics.add("rssi_median_at_2p5m", rssi_at_25);
  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  return 0;
}
