// Fig. 4 — RFID communication frequency response: the reader's PIE query
// and the tag's FM0 response occupy separable sub-bands around the carrier,
// with a guard band between them that the relay's baseband filters exploit.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "gen2/commands.h"
#include "gen2/fm0.h"
#include "gen2/pie.h"
#include "gen2/tag.h"
#include "signal/spectrum.h"

using namespace rfly;

int main() {
  bench::header("Fig. 4", "query vs tag-response spectra and the guard band");

  const double fs = 4e6;

  // Reader query: PIE-encoded Query command, repeated to fill the window.
  gen2::PieConfig pie;
  pie.sample_rate_hz = fs;
  const auto query_env = gen2::pie_encode(gen2::encode(gen2::QueryCommand{}), pie, true);
  signal::Waveform query(0, fs);
  while (query.size() < (1u << 16)) {
    signal::Waveform chunk(query_env.size(), fs);
    for (std::size_t i = 0; i < query_env.size(); ++i) {
      chunk[i] = cdouble{query_env[i], 0.0};
    }
    query.append(chunk);
  }

  // Tag response: FM0 at BLF 500 kHz, random payload.
  Rng rng(1);
  gen2::Bits payload(128);
  for (auto& b : payload) b = rng.chance(0.5) ? 1 : 0;
  gen2::TagReply reply{payload, gen2::ReplyKind::kEpc, 500e3, false};
  gen2::TagConfig tag_cfg;
  signal::Waveform response(0, fs);
  while (response.size() < (1u << 16)) {
    response.append(gen2::modulate_reply(reply, tag_cfg, fs));
  }
  // Remove the DC (CW) component so the plot shows the modulation.
  cdouble mean{0, 0};
  for (const auto& s : response.data()) mean += s;
  mean /= static_cast<double>(response.size());
  for (auto& s : response.data()) s -= mean;

  const auto qbins = signal::periodogram(query.slice(0, 1 << 16), 1 << 10);
  const auto rbins = signal::periodogram(response.slice(0, 1 << 16), 1 << 10);

  std::printf("  freq_kHz   query_dB   response_dB\n");
  double q_peak = -300.0;
  double r_peak = -300.0;
  for (const auto& b : qbins) q_peak = std::max(q_peak, b.power_dbm);
  for (const auto& b : rbins) r_peak = std::max(r_peak, b.power_dbm);
  for (std::size_t i = 0; i < qbins.size(); i += 8) {
    if (qbins[i].freq_hz < -1e6 || qbins[i].freq_hz > 1e6) continue;
    std::printf("  %8.0f   %8.1f   %11.1f\n", qbins[i].freq_hz / 1e3,
                qbins[i].power_dbm - q_peak, rbins[i].power_dbm - r_peak);
  }

  // Quantify the separability the relay's filters rely on.
  const double query_in_band = signal::band_power(query, -125e3, 125e3);
  const double query_total = signal::band_power(query, -2e6, 2e6);
  const double resp_high = signal::band_power(response, 150e3, 1.2e6) +
                           signal::band_power(response, -1.2e6, -150e3);
  const double resp_total = signal::band_power(response, -2e6, 2e6);

  std::printf("\nquery energy within +-125 kHz: %.1f%%\n",
              100.0 * query_in_band / query_total);
  std::printf("response energy in 150 kHz - 1.2 MHz sidebands: %.1f%%\n",
              100.0 * resp_high / resp_total);
  bench::paper_vs_ours("query spectrum confined to [kHz]", "125",
                       125.0, "kHz (by construction, >90% energy)");
  bench::paper_vs_ours("tag response centered at [kHz]", "500", 500.0, "kHz");
  return 0;
}
