// Fig. 12 — CDF of localization error over 100 trials spread across the
// 30 x 40 m facility, mixing line-of-sight and shelf-multipath placements.
// Paper: median 19 cm, 90th percentile 53 cm.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/experiments.h"

using namespace rfly;
using namespace rfly::core;

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.trials = 100;  // the paper's 100 trials
  opts.seed = 99;     // placement stream; per-trial seeds derive from 5000+t
  if (!opts.parse(argc, argv)) return 2;

  bench::header("Fig. 12", "localization error CDF across the facility");
  const int kTrials = opts.trials;

  std::vector<double> errors;
  int failed = 0;
  Rng placement_rng(opts.seed);
  for (int t = 0; t < kTrials; ++t) {
    LocalizationTrialConfig cfg;
    // Random placement over the floor; a third of the trials sit among
    // shelf rows (multipath / NLoS), like the paper's mixed environments.
    cfg.shelf_rows = (t % 3 == 0) ? 2 : 0;
    cfg.tag_position = {placement_rng.uniform(6.0, 34.0),
                        placement_rng.uniform(4.0, 26.0), 0.0};
    cfg.reader_position = {placement_rng.uniform(0.5, 3.0),
                           placement_rng.uniform(0.5, 3.0), 1.0};
    cfg.aperture_m = 2.0;
    cfg.flight_offset_y_m = placement_rng.uniform(1.2, 2.2);
    cfg.sar_kernel = opts.kernel;
    cfg.sar_search = opts.search;
    const auto result =
        run_localization_trial(cfg, 5000 + static_cast<std::uint64_t>(t));
    if (!result.localized) {
      ++failed;
      continue;
    }
    errors.push_back(result.sar_error_m);
  }

  std::printf("trials: %d, localized: %zu, failed: %d\n\n", kTrials, errors.size(),
              failed);
  bench::print_cdf("localization error", errors, "m");
  bench::summary_line("SAR through-relay", errors, "m");
  bench::paper_vs_ours("median localization error [cm]", "19",
                       100.0 * median(errors), "cm");
  bench::paper_vs_ours("90th percentile error [cm]", "53",
                       100.0 * percentile(errors, 90), "cm");

  bench::Metrics metrics;
  metrics.add("trials", kTrials);
  metrics.add("failed", failed);
  metrics.add("median_error_m", median(errors));
  metrics.add("p90_error_m", percentile(errors, 90));
  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  return 0;
}
