// Google-benchmark microbenchmarks of the system's hot kernels: the SAR
// grid projection (localization inner loop), the relay's per-sample chain,
// and the FM0 decoder. These bound how fast the full experiments can run.
#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "channel/channel_model.h"
#include "channel/environment.h"
#include "channel/path_loss.h"
#include "core/forward_kernel.h"
#include "core/forward_plane.h"
#include "core/system.h"
#include "drone/flight.h"
#include "drone/trajectory.h"
#include "gen2/fm0.h"
#include "localize/localizer.h"
#include "relay/coupling.h"
#include "relay/rfly_relay.h"

using namespace rfly;

namespace {

localize::DisentangledSet make_set(std::size_t n_points) {
  const auto traj =
      drone::linear_trajectory({4, 2, 1}, {6, 2, 1}, n_points);
  localize::DisentangledSet set;
  for (const auto& p : traj) {
    set.positions.push_back(p);
    const cdouble h2 = channel::propagation_coefficient(p.distance_to({5, 0, 0}), 916e6);
    set.channels.push_back(h2 * h2);
  }
  return set;
}

void BM_SarHeatmap(benchmark::State& state) {
  const auto set = make_set(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<unsigned>(state.range(1));
  const auto kernel = static_cast<localize::SarKernel>(state.range(2));
  localize::GridSpec grid{4.0, 6.0, -0.5, 1.5, 0.05};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        localize::sar_heatmap(set, grid, 916e6, 0.0, threads, kernel));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.nx() * grid.ny() *
                                                    set.channels.size()));
}
// Second arg: SAR engine threads (1 = legacy serial path). Third: kernel
// (0 = exact libm loop, 1 = fast SIMD kernel) — the 1-thread pairs are the
// headline exact-vs-fast speedup for EXPERIMENTS.md.
BENCHMARK(BM_SarHeatmap)
    ->ArgsProduct({{10, 40, 160}, {1, 2, 8}, {0, 1}})
    ->ArgNames({"points", "threads", "kernel"});

void BM_SarProjection(benchmark::State& state) {
  const auto set = make_set(static_cast<std::size_t>(state.range(0)));
  const auto kernel = static_cast<localize::SarKernel>(state.range(1));
  const auto geo = localize::SarGeometry::from(set, 916e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        localize::sar_projection(geo, {5.0, 0.1, 0.0}, kernel));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(set.channels.size()));
}
// The refine_peak / localize_3d inner call (lanes across samples).
BENCHMARK(BM_SarProjection)
    ->ArgsProduct({{40, 160}, {0, 1}})
    ->ArgNames({"points", "kernel"});

void BM_RelayStep(benchmark::State& state) {
  auto relay_hw = relay::make_rfly_relay(relay::RflyRelayConfig{}, 1);
  Rng rng(2);
  const auto coupling = relay::draw_coupling(relay::rfly_flight_coupling(), rng);
  relay::CoupledRelay loop(*relay_hw, coupling);
  const cdouble drive{1e-4, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.step(drive, cdouble{0.0, 0.0}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RelayStep);

void BM_Fm0Decode(benchmark::State& state) {
  const std::size_t n_bits = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  gen2::Bits bits(n_bits);
  for (auto& b : bits) b = rng.chance(0.5) ? 1 : 0;
  const auto levels = gen2::fm0_levels(bits);
  const double spb = 4.0;
  std::vector<cdouble> x(
      static_cast<std::size_t>(spb * static_cast<double>(levels.size())) + 64,
      cdouble{1e-3, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto k = std::min(static_cast<std::size_t>(static_cast<double>(i) / spb),
                            levels.size() - 1);
    x[i] += 1e-6 * static_cast<double>(levels[k]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen2::fm0_decode(x, spb, n_bits));
  }
}
BENCHMARK(BM_Fm0Decode)->Arg(16)->Arg(128);

void BM_PointToPointChannel(benchmark::State& state) {
  const auto env = channel::warehouse_environment(40.0, 30.0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        channel::point_to_point_channel(env, {1, 1, 1}, {30, 20, 0.5}, 915e6));
  }
}
BENCHMARK(BM_PointToPointChannel);

void BM_SincosLibm(benchmark::State& state) {
  constexpr std::size_t kN = 4096;
  std::vector<double> x(kN), s(kN), c(kN);
  Rng rng(11);
  for (auto& v : x) v = rng.uniform(-1e4, 1e4);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kN; ++i) {
      s[i] = std::sin(x[i]);
      c[i] = std::cos(x[i]);
    }
    benchmark::DoNotOptimize(s.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN));
}

// Forward-synthesis kernel: one hoisted plane, many tags. The fixture is
// shared across registrations (the plane build is the amortized cost the
// bench deliberately excludes — it happens once per flight, not per tag).
struct ForwardFixture {
  core::RflySystem system;
  std::vector<drone::FlownPoint> flight;
  core::ForwardPlane plane;
};

const ForwardFixture& forward_fixture() {
  static const ForwardFixture* fixture = [] {
    Rng rng(7);
    core::RflySystem system(core::SystemConfig{},
                            channel::warehouse_environment(24.0, 12.0, 2),
                            {1.0, 1.0, 1.0});
    auto flight =
        drone::fly(drone::linear_trajectory({1.0, 3.0, 1.0}, {22.0, 3.0, 1.0}, 64),
                   {}, drone::optitrack_tracking(), rng);
    auto plane = core::ForwardPlane::build(system, flight);
    return new ForwardFixture{std::move(system), std::move(flight),
                              std::move(plane)};
  }();
  return *fixture;
}

std::vector<channel::Vec3> forward_tags(std::size_t count) {
  std::vector<channel::Vec3> tags;
  tags.reserve(count);
  Rng rng(13);
  for (std::size_t i = 0; i < count; ++i) {
    tags.push_back({rng.uniform(1.0, 23.0), rng.uniform(0.5, 11.5),
                    rng.uniform(0.2, 1.5)});
  }
  return tags;
}

void BM_ForwardSynthesis(benchmark::State& state,
                         const core::ForwardKernelVariant* variant) {
  const auto& fixture = forward_fixture();
  const auto tags = forward_tags(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::synthesize_forward_channels(fixture.system, fixture.plane, tags,
                                          variant));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tags.size()) *
                          static_cast<std::int64_t>(fixture.plane.size()));
}

void BM_SincosVariant(benchmark::State& state,
                      const localize::SarKernelVariant* variant) {
  constexpr std::size_t kN = 4096;
  std::vector<double> x(kN), s(kN), c(kN);
  Rng rng(11);
  for (auto& v : x) v = rng.uniform(-1e4, 1e4);
  for (auto _ : state) {
    variant->sincos(x.data(), s.data(), c.data(), kN);
    benchmark::DoNotOptimize(s.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN));
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the sincos variant list is a
// runtime property of the host CPU (AVX-512 benches only make sense where
// the dispatcher could pick them), so the per-ISA benches are registered
// dynamically next to the static ones above.
int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("BM_Sincos/impl:libm", BM_SincosLibm);
  for (const auto& variant : localize::sar_kernel_variants()) {
    if (!variant.supported) continue;
    benchmark::RegisterBenchmark(
        (std::string("BM_Sincos/impl:") + variant.isa).c_str(),
        BM_SincosVariant, &variant);
  }
  for (const auto& variant : core::forward_kernel_variants()) {
    if (!variant.supported) continue;
    benchmark::RegisterBenchmark(
        (std::string("BM_ForwardSynthesis/impl:") + variant.isa).c_str(),
        BM_ForwardSynthesis, &variant)
        ->Arg(1)
        ->Arg(16)
        ->Arg(256)
        ->ArgName("tags");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
