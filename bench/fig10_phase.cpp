// Fig. 10 — Phase accuracy with and without the mirrored architecture.
// Methodology follows paper Section 7.1(b): tag 0.5 m from the relay, the
// relay cabled to the USRP reader (no antenna self-interference), 50 trials
// with a random reader carrier phase each; phase error = deviation of the
// decoded channel's phase across trials. The mirrored relay preserves phase;
// independent uplink synthesizers randomize it.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/units.h"
#include "core/airtime.h"
#include "gen2/tag.h"
#include "reader/channel_estimator.h"

using namespace rfly;
using namespace rfly::core;

namespace {

std::vector<double> phase_errors(bool mirrored, int trials) {
  gen2::TagConfig tag_cfg;
  tag_cfg.epc = gen2::Epc{0x30, 0x14, 0xAB, 0, 0, 0, 0, 0, 0, 0, 0, 0x07};
  reader::Reader rdr{reader::ReaderConfig{}};

  std::vector<double> phases;
  for (int trial = 0; trial < trials; ++trial) {
    gen2::Tag tag(tag_cfg, 9);
    Rng rng(4000 + static_cast<std::uint64_t>(trial));
    const double reader_phase = rng.phase();

    relay::RflyRelayConfig rcfg;
    rcfg.mirrored = mirrored;
    const std::uint64_t seed = 8000 + static_cast<std::uint64_t>(trial) * 13;
    auto r1 = relay::make_rfly_relay(rcfg, seed);
    auto r2 = relay::make_rfly_relay(rcfg, seed);

    ExchangeConfig cfg;
    // Wired bench: cable plus attenuator (keeps the relay's input in its
    // linear region, as on a real bench), tag at 0.5 m.
    cfg.h_reader_relay = cdouble{db_to_amplitude(-60.0), 0.0};
    cfg.h_relay_tag = cdouble{db_to_amplitude(-25.7), 0.0};
    cfg.reader_carrier_phase_rad = reader_phase;

    gen2::QueryCommand q;
    q.q = 0;
    const relay::Coupling wired{};  // no antenna feedback on the bench
    const auto result = run_relay_exchange(rdr, gen2::Command{q}, gen2::kRn16Bits,
                                           tag, *r1, *r2, wired, cfg, rng);
    if (!result.tag_replied) continue;
    const auto rx = result.reader_rx.slice(result.reply_window_start,
                                           result.reader_rx.size());
    reader::ChannelEstimatorConfig est;
    const auto decoded = reader::decode_reply(rx, gen2::kRn16Bits, est);
    if (!decoded) continue;
    phases.push_back(wrap_phase(std::arg(decoded->channel) - reader_phase));
  }

  // Error vs the circular median (first trial as the reference works since
  // the constant hardware phase is common to all trials).
  std::vector<double> errors;
  for (double p : phases) {
    errors.push_back(rad_to_deg(phase_distance(p, phases.front())));
  }
  return errors;
}

}  // namespace

int main() {
  bench::header("Fig. 10", "phase error CDF, mirrored vs no-mirror relay");
  constexpr int kTrials = 50;

  const auto mirrored = phase_errors(true, kTrials);
  const auto no_mirror = phase_errors(false, kTrials);

  bench::print_cdf("phase error (mirrored)", mirrored, "deg");
  bench::print_cdf("phase error (no mirror)", no_mirror, "deg");
  bench::summary_line("RFly (mirrored)", mirrored, "deg");
  bench::summary_line("No-mirror baseline", no_mirror, "deg");

  bench::paper_vs_ours("mirrored median phase error [deg]", "0.34",
                       median(mirrored), "deg");
  bench::paper_vs_ours("mirrored 99th pct phase error [deg]", "1.2",
                       percentile(mirrored, 99), "deg");
  bench::paper_vs_ours("no-mirror phase", "uniform/random",
                       median(no_mirror), "deg median error");
  return 0;
}
