// Ablations over RFly's design choices (DESIGN.md): what each piece of the
// architecture buys.
//  A1: mirrored synthesizers  -> phase stability of the relayed channel
//  A2: downlink LPF order     -> inter-link isolation
//  A3: frequency-shift size   -> SAR model error from using f instead of f2
//  A4: peak selection rule    -> localization under strong multipath
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/units.h"
#include "channel/path_loss.h"
#include "core/experiments.h"
#include "drone/trajectory.h"
#include "localize/localizer.h"
#include "relay/isolation.h"

using namespace rfly;
using namespace rfly::core;

namespace {

void a1_mirrored() {
  std::printf("\n--- A1: mirrored architecture vs independent synthesizers ---\n");
  // Tone round trip through the relay (as in tests): phase spread across
  // oscillator draws.
  for (bool mirrored : {true, false}) {
    relay::RflyRelayConfig cfg;
    cfg.mirrored = mirrored;
    cfg.enable_pa = false;
    std::vector<double> phases;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      auto relay_hw = relay::make_rfly_relay(cfg, 100 + seed * 7);
      const std::size_t n = 24000;
      const double fs = 4e6;
      const double amp = std::sqrt(dbm_to_watts(-30.0));
      const auto tx = signal::make_tone(20e3, amp, n, fs);
      signal::Waveform rx(n, fs);
      cdouble reflected{0.0, 0.0};
      for (std::size_t i = 0; i < n; ++i) {
        const auto out = relay_hw->step(tx[i], reflected);
        const double mod = std::cos(kTwoPi * 500e3 * static_cast<double>(i) / fs);
        reflected = out.downlink * 0.2 * mod;
        rx[i] = out.uplink;
      }
      const auto steady = rx.slice(8000, n - 8000);
      cdouble acc{0.0, 0.0};
      cdouble rot{1.0, 0.0};
      const cdouble step = cis(-kTwoPi * 520e3 / fs);
      for (const auto& s : steady.data()) {
        acc += s * rot;
        rot *= step;
      }
      phases.push_back(std::arg(acc));
    }
    std::vector<double> err;
    for (double p : phases) err.push_back(rad_to_deg(phase_distance(p, phases[0])));
    std::printf("  mirrored=%d  phase spread p90: %7.2f deg\n", mirrored ? 1 : 0,
                percentile(err, 90));
  }
}

void a2_lpf_order() {
  std::printf("\n--- A2: downlink LPF order vs inter-link isolation ---\n");
  for (int order : {2, 4, 6, 8}) {
    relay::RflyRelayConfig cfg;
    cfg.lpf_order = order;
    cfg.component_spread_db = 0.0;
    cfg.synth_freq_error_std_hz = 0.0;
    auto factory = [cfg] { return relay::make_rfly_relay(cfg, 55); };
    const auto iso = relay::measure_isolation(
        factory, relay::IsolationKind::kInterUplinkDownlink, cfg.freq_shift_hz, {});
    std::printf("  LPF order %d: inter(uplink->downlink) isolation %6.1f dB\n",
                order, iso.isolation_db);
  }
  std::printf("  (the prototype's order-6 filter is what reaches the paper's"
              " ~110 dB)\n");
}

void a3_frequency_shift() {
  std::printf("\n--- A3: frequency shift size vs SAR frequency-model error ---\n");
  // Localization uses f while the isolated half-link is at f2 = f + shift;
  // the phase-slope error grows with shift/f (Section 5.2's (f-f2)/f rule).
  for (double shift : {1e6, 5e6, 10e6, 25e6}) {
    LocalizationTrialConfig cfg;
    cfg.shelf_rows = 0;
    cfg.system.freq_shift_hz = shift;
    cfg.localize_at_reader_freq = true;  // use f instead of f2
    std::vector<double> errors;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      auto result = run_localization_trial(cfg, 300 + seed);
      if (result.localized) errors.push_back(result.sar_error_m);
    }
    std::printf("  shift %5.0f kHz (ratio %.4f): median error %6.3f m\n",
                shift / 1e3, shift / 915e6, median(errors));
  }
  std::printf("  (error is insensitive to the shift at these ranges: using f in\n"
              "   the SAR equations is safe, as Section 5.2 argues)\n");
}

void a4_peak_selection() {
  std::printf("\n--- A4: highest peak vs trajectory-nearest peak (multipath) ---\n");
  // Adversarial scene per paper Fig. 6(b): the direct path is occluded so a
  // wall reflection produces the *strongest* heatmap lobe. Synthesized via
  // an image tag across the far wall, stronger than the direct return.
  using channel::Vec3;
  for (auto selection : {localize::PeakSelection::kHighest,
                         localize::PeakSelection::kNearestToTrajectory}) {
    std::vector<double> errors;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng(900 + seed);
      const auto traj = drone::linear_trajectory({4.0, 2.0, 1.0}, {6.0, 2.4, 1.0}, 40);
      const Vec3 tag{5.0 + rng.uniform(-0.3, 0.3), 0.5, 0.0};
      const Vec3 ghost{6.5, 4.5, 0.0};
      localize::MeasurementSet set;
      for (const auto& p : traj) {
        const cdouble h1 =
            channel::propagation_coefficient(p.distance_to({0, 0, 1}), 915e6);
        const cdouble h2 =
            channel::propagation_coefficient(p.distance_to(tag), 916e6) +
            0.8 * channel::propagation_coefficient(p.distance_to(ghost), 916e6);
        localize::RelayMeasurement m;
        m.relay_position = p;
        m.embedded_channel = h1 * h1 * 1e-3;
        m.target_channel = h1 * h1 * h2 * h2;
        set.push_back(m);
      }
      localize::LocalizerConfig cfg;
      cfg.freq_hz = 916e6;
      cfg.grid = {3.0, 8.0, -1.0, 7.0, 0.02};
      cfg.peak_threshold_fraction = 0.35;
      cfg.selection = selection;
      const auto result = localize::localize_2d(set, cfg);
      if (result) {
        errors.push_back(std::hypot(result->x - tag.x, result->y - tag.y));
      }
    }
    std::printf("  %-22s median %6.3f m   p90 %6.3f m\n",
                selection == localize::PeakSelection::kHighest
                    ? "highest peak"
                    : "nearest to trajectory",
                median(errors), percentile(errors, 90));
  }
}

}  // namespace

int main() {
  bench::header("Ablations", "what each design choice contributes");
  a1_mirrored();
  a2_lpf_order();
  a3_frequency_shift();
  a4_peak_selection();
  return 0;
}
