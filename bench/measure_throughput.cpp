// Measure-stage throughput: channel-measurement synthesis over the
// warehouse preset's flight as the tag population grows 1 -> 2000. Three
// paths at each size:
//
//   scalar — the seed's per-tag loop: every waypoint re-derives the
//     reader↔relay channel, saturated relay gains, and embedded channel
//     for every tag (~5 channel evaluations per point per tag).
//   exact  — the hoisted ForwardPlane: the per-waypoint half is computed
//     once per flight and shared across tags; the per-(point, tag) work
//     shrinks to one relay→tag channel. Bit-identical to scalar.
//   fast   — plane + the multiversioned SIMD forward kernels
//     (synthesize_forward_channels with the dispatcher's active variant;
//     every supported ISA is also timed on the synthesis inner loop).
//
//   bench_measure_throughput                       # full ladder
//   bench_measure_throughput --trials 5            # timing repetitions
//   bench_measure_throughput --out BENCH_measure.json
//
// The headline metric is speedup_exact_1000 / speedup_fast_1000 (scalar ms
// over plane ms at 1000 tags; acceptance floor 5x) plus
// channel_evals_per_flight, which pins that the plane evaluates the
// reader↔relay channel once per waypoint per flight — not once per tag.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/forward_kernel.h"
#include "core/forward_plane.h"
#include "core/system.h"
#include "drone/flight.h"
#include "obs/metrics.h"
#include "sim/scenario.h"

using namespace rfly;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<channel::Vec3> spread_tags(const sim::Scenario& scenario,
                                       std::size_t count) {
  std::vector<channel::Vec3> tags;
  tags.reserve(count);
  Rng rng(17);
  const double w = scenario.environment.width_m;
  const double h = scenario.environment.height_m;
  for (std::size_t i = 0; i < count; ++i) {
    tags.push_back({rng.uniform(0.5, w - 0.5), rng.uniform(0.5, h - 0.5),
                    rng.uniform(0.2, 1.5)});
  }
  return tags;
}

/// Best-of-`reps` wall time for one measure-stage pass over all tags.
/// Every mode consumes the same rng stream shape, so the timed work is
/// comparable; the plane build is timed inside the plane modes — it is part
/// of the stage cost the hoist amortizes.
struct ModeTimes {
  double scalar_s = 0.0;
  double exact_s = 0.0;
  double fast_s = 0.0;
};

ModeTimes time_modes(const core::RflySystem& system,
                     const std::vector<drone::FlownPoint>& flight,
                     const std::vector<channel::Vec3>& tags, int reps) {
  ModeTimes best{1e300, 1e300, 1e300};
  std::size_t sink = 0;
  for (int r = 0; r < reps; ++r) {
    {
      Rng rng(99);
      const auto start = std::chrono::steady_clock::now();
      for (const auto& tag : tags) {
        const auto set = system.try_collect_measurements(flight, tag, rng);
        if (set.ok()) sink += set.value().size();
      }
      best.scalar_s = std::min(best.scalar_s, seconds_since(start));
    }
    {
      Rng rng(99);
      const auto start = std::chrono::steady_clock::now();
      const auto plane = core::ForwardPlane::build(system, flight);
      for (const auto& tag : tags) {
        const auto set = system.try_collect_measurements(flight, tag, rng, plane);
        if (set.ok()) sink += set.value().size();
      }
      best.exact_s = std::min(best.exact_s, seconds_since(start));
    }
    {
      Rng rng(99);
      const auto start = std::chrono::steady_clock::now();
      const auto plane = core::ForwardPlane::build(system, flight);
      const auto synth = core::synthesize_forward_channels(system, plane, tags);
      for (std::size_t i = 0; i < tags.size(); ++i) {
        const auto set =
            system.try_collect_measurements(flight, rng, plane, synth[i]);
        if (set.ok()) sink += set.value().size();
      }
      best.fast_s = std::min(best.fast_s, seconds_since(start));
    }
  }
  if (sink == 0) std::fprintf(stderr, "warning: no measurements collected\n");
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.trials = 3;  // timing repetitions per point (best-of)
  if (!opts.parse(argc, argv)) return 2;
  const int reps = opts.trials > 0 ? opts.trials : 3;

  auto loaded = sim::preset("warehouse");
  if (!loaded) {
    std::fprintf(stderr, "%s\n", loaded.status().to_string().c_str());
    return 1;
  }
  const sim::Scenario scenario = std::move(loaded.value());

  const channel::Environment env = scenario.environment.build();
  const core::RflySystem system(scenario.system, env, scenario.reader_position);
  Rng fly_rng(opts.seed);
  const auto flight = drone::fly(sim::flight_plan(scenario), scenario.flight,
                                 scenario.tracking, fly_rng);

  bench::header("BENCH measure", "measurement-synthesis plane throughput");
  std::printf(
      "warehouse preset flight (%zu waypoints), best of %d; times are the\n"
      "whole measure stage (plane build + per-tag collect)\n\n",
      flight.size(), reps);

  bench::Metrics metrics;
  metrics.add("flight_points", static_cast<double>(flight.size()));

  // The once-per-flight contract: building a plane evaluates the
  // reader<->relay channel exactly flight.size() times, no matter how many
  // tags the stage will serve.
  if (obs::kEnabled) {
    auto& evals = obs::counter("measure.plane.channel_evals");
    const auto before = evals.value();
    const auto probe = core::ForwardPlane::build(system, flight);
    const double per_flight = static_cast<double>(evals.value() - before);
    metrics.add("channel_evals_per_flight", per_flight);
    std::printf("plane build: %.0f channel evals for %zu waypoints%s\n\n",
                per_flight, flight.size(),
                per_flight == static_cast<double>(flight.size())
                    ? " (once per waypoint)"
                    : "  ** EXPECTED once per waypoint **");
  }

  std::printf("%8s %12s %12s %12s %10s %10s\n", "tags", "scalar ms",
              "exact ms", "fast ms", "exact x", "fast x");
  const std::vector<std::size_t> ladder{1, 10, 100, 1000, 2000};
  for (std::size_t n : ladder) {
    const auto tags = spread_tags(scenario, n);
    const ModeTimes t = time_modes(system, flight, tags, reps);
    const double exact_x = t.exact_s > 0.0 ? t.scalar_s / t.exact_s : 0.0;
    const double fast_x = t.fast_s > 0.0 ? t.scalar_s / t.fast_s : 0.0;
    std::printf("%8zu %12.2f %12.2f %12.2f %9.2fx %9.2fx\n", n,
                t.scalar_s * 1e3, t.exact_s * 1e3, t.fast_s * 1e3, exact_x,
                fast_x);
    const std::string suffix = std::to_string(n);
    metrics.add("scalar_ms_" + suffix, t.scalar_s * 1e3);
    metrics.add("exact_ms_" + suffix, t.exact_s * 1e3);
    metrics.add("fast_ms_" + suffix, t.fast_s * 1e3);
    metrics.add("speedup_exact_" + suffix, exact_x);
    metrics.add("speedup_fast_" + suffix, fast_x);
  }

  // Per-ISA synthesis inner loop (the part the multiversioned kernels own),
  // at the top of the ladder.
  std::printf("\nsynthesis kernel, %zu tags x %zu waypoints:\n", ladder.back(),
              flight.size());
  {
    const auto tags = spread_tags(scenario, ladder.back());
    const auto plane = core::ForwardPlane::build(system, flight);
    for (const auto& variant : core::forward_kernel_variants()) {
      if (!variant.supported) continue;
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        const auto synth =
            core::synthesize_forward_channels(system, plane, tags, &variant);
        best = std::min(best, seconds_since(start));
        if (synth.size() != tags.size()) return 1;
      }
      std::printf("  %-8s %10.2f ms\n", variant.isa, best * 1e3);
      metrics.add(std::string("synthesis_ms_") + variant.isa, best * 1e3);
    }
    std::printf("  active: %s\n", core::forward_kernel_active().isa);
  }

  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  return 0;
}
