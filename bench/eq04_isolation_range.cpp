// Eq. 3/4 — Isolation bounds relay range: R/lambda < 10^{I/20}/(4 pi).
// Prints the analytic table the paper quotes (30 dB -> 0.75 m,
// 80 dB -> 238 m at lambda = 0.3 m) and the theoretical range implied by
// the isolations our simulated relay actually measures.
#include <cstdio>

#include "bench_util.h"
#include "channel/link_budget.h"
#include "common/constants.h"
#include "relay/isolation.h"

using namespace rfly;

int main() {
  bench::header("Eq. 3/4", "self-interference isolation vs maximum relay range");

  const double f_paper = kSpeedOfLight / 0.3;  // the paper's lambda = 0.3 m
  std::printf("  isolation_dB   range_m(@915MHz)   range_m(@lambda=0.3m)\n");
  for (double iso : {20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0}) {
    std::printf("  %12.0f   %16.2f   %20.2f\n", iso,
                channel::max_relay_range_m(iso, 915e6),
                channel::max_relay_range_m(iso, f_paper));
  }

  bench::paper_vs_ours("range at 30 dB isolation [m]", "0.75",
                       channel::max_relay_range_m(30.0, f_paper), "m");
  bench::paper_vs_ours("range at 80 dB isolation [m]", "238",
                       channel::max_relay_range_m(80.0, f_paper), "m");

  // Now the measured relay: its weakest isolation path bounds the range.
  relay::RflyRelayConfig cfg;
  auto factory = [&cfg] { return relay::make_rfly_relay(cfg, 99); };
  const auto trial =
      relay::measure_all_isolations(factory, cfg.freq_shift_hz, {});
  const double weakest =
      std::min({trial.intra_downlink.isolation_db, trial.intra_uplink.isolation_db,
                trial.inter_downlink_uplink.isolation_db,
                trial.inter_uplink_downlink.isolation_db});
  std::printf("\nsimulated relay isolations: intra_d %.1f, intra_u %.1f, "
              "inter_du %.1f, inter_ud %.1f dB\n",
              trial.intra_downlink.isolation_db, trial.intra_uplink.isolation_db,
              trial.inter_downlink_uplink.isolation_db,
              trial.inter_uplink_downlink.isolation_db);
  std::printf("weakest path %.1f dB -> theoretical range %.1f m at 915 MHz\n",
              weakest, channel::max_relay_range_m(weakest, 915e6));
  bench::paper_vs_ours(">70 dB across paths -> theoretical range [m]", "83",
                       channel::max_relay_range_m(weakest, 915e6), "m");
  return 0;
}
