// Robustness sweep — graceful degradation under injected faults. Runs the
// warehouse preset through the fault layer (sim/faults.h) along two axes —
// measurement dropout rate and wind trajectory jitter — and reports the
// localization-error CDF at every point, for both the exact and fast SAR
// kernels. The paper's deployments (Section 7.3) survive real-world sway,
// lost reads, and residual relay phase error; this bench shows the
// reproduction degrades smoothly instead of falling over: at 20% dropout
// every mission still completes (DEGRADED, never FAILED) and the median
// error grows gently with the fault intensity.
//
//   robustness_sweep --trials 6 --threads 0 --kernel exact
//   robustness_sweep --set faults.max_attempts=5 --out BENCH_robustness.json
//
// The per-trial engine seeds come from the batch runner's splitmix64 stream,
// so every sweep point runs the SAME missions (paired comparison) and the
// JSON is reproducible bit-for-bit at any --threads setting.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/batch.h"

using namespace rfly;

namespace {

struct SweepPoint {
  const char* fault;  // FaultConfig field being swept
  double value;
};

/// One (kernel, fault, value) cell of the sweep.
struct PointResult {
  std::string kernel;
  std::string fault;
  double value = 0.0;
  std::size_t missions = 0;
  std::size_t failed = 0;
  std::size_t degraded = 0;
  double mean_coverage = 0.0;
  double median_cm = 0.0;  // 0 when nothing localized (NaN breaks the JSON)
  double p90_cm = 0.0;
  std::vector<double> errors_cm;  // sorted ascending; localized items only
};

/// Shared emitters (common/json.h): strings escaped, NaN/Inf -> null.
void append_double(std::string& out, double v) { out += json_number(v); }

std::string sweep_to_json(const std::vector<PointResult>& points) {
  std::string out = "[";
  bool first_point = true;
  for (const auto& p : points) {
    if (!first_point) out += ", ";
    first_point = false;
    out += "{\"kernel\": " + json_quote(p.kernel) +
           ", \"fault\": " + json_quote(p.fault) + ", \"value\": ";
    append_double(out, p.value);
    out += ", \"missions\": " + std::to_string(p.missions);
    out += ", \"failed\": " + std::to_string(p.failed);
    out += ", \"degraded\": " + std::to_string(p.degraded);
    out += ", \"mean_coverage\": ";
    append_double(out, p.mean_coverage);
    out += ", \"median_cm\": ";
    append_double(out, p.median_cm);
    out += ", \"p90_cm\": ";
    append_double(out, p.p90_cm);
    out += ", \"errors_cm\": [";
    bool first_err = true;
    for (double e : p.errors_cm) {
      if (!first_err) out += ", ";
      first_err = false;
      append_double(out, e);
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.trials = 6;
  opts.out = "BENCH_robustness.json";
  if (!opts.parse(argc, argv)) return 2;

  bench::header("Robustness", "localization error vs fault intensity (warehouse)");

  auto loaded = sim::preset("warehouse");
  if (!loaded) {
    std::fprintf(stderr, "%s\n", loaded.status().to_string().c_str());
    return 1;
  }
  sim::Scenario base = std::move(loaded.value());
  for (const auto& [key, value] : opts.overrides) {
    if (Status status = sim::apply_override(base, key, value);
        !status.is_ok()) {
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
      bench::CliOptions::usage(argv[0]);
      return 2;
    }
  }

  const std::uint64_t first_seed = opts.seed != 1 ? opts.seed : base.seed;
  const std::size_t trials =
      opts.trials > 0 ? static_cast<std::size_t>(opts.trials) : 1;

  // Dropout sweeps past the 20% acceptance point; jitter covers calm air
  // through the paper's centimeter-scale sway. Each axis is swept alone so
  // a point isolates one impairment.
  const SweepPoint kPoints[] = {
      {"dropout", 0.0},  {"dropout", 0.05}, {"dropout", 0.1},
      {"dropout", 0.2},  {"dropout", 0.3},  {"dropout", 0.4},
      {"wind_jitter_std_m", 0.0}, {"wind_jitter_std_m", 0.02},
      {"wind_jitter_std_m", 0.05},
  };
  std::vector<localize::SarKernel> kernels;
  if (opts.kernel_explicit) {
    kernels = {opts.kernel};
  } else {
    kernels = {localize::SarKernel::kExact, localize::SarKernel::kFast};
  }

  std::vector<PointResult> points;
  for (const auto kernel : kernels) {
    std::printf("kernel %s (%zu trial(s)/point, base seed %llu):\n",
                localize::sar_kernel_name(kernel), trials,
                static_cast<unsigned long long>(first_seed));
    std::printf("  %-20s %7s  %4s %4s %4s  %9s  %10s %10s\n", "fault", "value",
                "runs", "fail", "degr", "coverage", "median", "p90");
    for (const auto& point : kPoints) {
      sim::Scenario scenario = base;
      scenario.sar_kernel = kernel;
      scenario.faults = base.faults;  // --set faults.* overrides carry over
      if (std::string(point.fault) == "dropout") {
        scenario.faults.dropout = point.value;
      } else {
        scenario.faults.wind_jitter_std_m = point.value;
      }

      const auto batch =
          sim::run_seed_sweep(scenario, first_seed, trials, {opts.threads});
      const auto summary = sim::summarize(batch);

      PointResult pr;
      pr.kernel = localize::sar_kernel_name(kernel);
      pr.fault = point.fault;
      pr.value = point.value;
      pr.missions = summary.jobs;
      pr.failed = summary.failed;
      pr.degraded = summary.degraded;
      pr.mean_coverage = summary.mean_coverage;
      for (const auto& result : batch) {
        if (!result.status.is_ok()) continue;
        const auto& items = result.run.report.items;
        // Report items are in tag-population order, so items[i] answers for
        // scenario.tags[i]; error is the 2D (floor-plane) distance.
        const std::size_t n = std::min(items.size(), scenario.tags.size());
        for (std::size_t i = 0; i < n; ++i) {
          if (!items[i].localized) continue;
          const double dx = items[i].estimate.x - scenario.tags[i].position.x;
          const double dy = items[i].estimate.y - scenario.tags[i].position.y;
          pr.errors_cm.push_back(100.0 * std::hypot(dx, dy));
        }
      }
      std::sort(pr.errors_cm.begin(), pr.errors_cm.end());
      if (!pr.errors_cm.empty()) {
        pr.median_cm = median(pr.errors_cm);
        pr.p90_cm = percentile(pr.errors_cm, 90);
      }

      std::printf("  %-20s %7.3f  %4zu %4zu %4zu  %8.1f%%  %8.1fcm %8.1fcm\n",
                  pr.fault.c_str(), pr.value, pr.missions, pr.failed,
                  pr.degraded, pr.mean_coverage * 100.0, pr.median_cm,
                  pr.p90_cm);
      points.push_back(std::move(pr));
    }
    std::printf("\n");
  }

  bench::Metrics metrics;
  metrics.add("trials_per_point", static_cast<double>(trials));
  metrics.add_json("sweep", sweep_to_json(points));
  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  return 0;
}
