// Observability overhead bench: times the instrumented SAR hot path and the
// raw probe primitives, writing BENCH_obs.json. One binary cannot compare
// RFLY_OBS=ON against OFF directly — build both trees and run this in each;
// the "obs_enabled" key tells the two files apart and the acceptance bar is
// the ON sar_heatmap time within 5% of the OFF one (see DESIGN.md for the
// measured number).
//
//   obs_overhead [--seed N] [--trials N] [--out FILE]   (--out defaults to
//   BENCH_obs.json)
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/system.h"
#include "drone/flight.h"
#include "drone/trajectory.h"
#include "localize/localizer.h"

using namespace rfly;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-N wall time of `body` in milliseconds.
template <typename F>
double best_ms(int reps, F&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body();
    best = std::min(best, seconds_since(t0) * 1e3);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::CliOptions opts;
  opts.seed = 33;
  opts.trials = 5;
  opts.out = "BENCH_obs.json";
  if (!opts.parse(argc, argv)) return 2;

  bench::header("obs overhead",
                obs::kEnabled ? "probes compiled IN (RFLY_OBS=ON)"
                              : "probes compiled OUT (RFLY_OBS=OFF)");

  // The fig06-sized SAR problem: the workload whose hot loop carries the
  // chunk-granularity probes.
  core::SystemConfig sys_cfg;
  core::RflySystem system(sys_cfg, channel::Environment{}, {-8.0, 1.0, 1.0});
  Rng rng(opts.seed);
  const auto plan =
      drone::linear_trajectory({0.0, -0.4, 1.0}, {2.8, -0.35, 1.0}, 50);
  const auto flight =
      drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);
  const auto measurements =
      system.collect_measurements(flight, {1.4, 0.9, 0.0}, rng);
  const auto iso = localize::disentangle(measurements);
  const double freq = sys_cfg.carrier_hz + sys_cfg.freq_shift_hz;
  const localize::GridSpec grid{-0.5, 3.0, -0.5, 2.0, 0.02};

  const double sar_ms = best_ms(opts.trials, [&] {
    const auto map = localize::sar_heatmap(iso, grid, freq, 0.0, 1);
    if (map.values.empty()) std::printf("unexpected empty heatmap\n");
  });
  std::printf("sar_heatmap (serial, %zux%zu):  %10.3f ms best of %d\n",
              grid.nx(), grid.ny(), sar_ms, opts.trials);

  // Raw probe costs, amortized over a tight loop. These are the primitives
  // the hot paths pay per event. In an OFF build the no-op loops fold to
  // nothing and the per-op numbers read ~0 — which is the honest answer.
  constexpr int kProbeReps = 1'000'000;
  auto& counter = obs::counter("bench.probe_counter");
  auto& hist =
      obs::histogram("bench.probe_hist", obs::HistogramSpec::duration_seconds());
  const double counter_ns = best_ms(3, [&] {
                              for (int i = 0; i < kProbeReps; ++i) counter.inc();
                            }) *
                            1e6 / kProbeReps;
  const double hist_ns = best_ms(3, [&] {
                           for (int i = 0; i < kProbeReps; ++i) {
                             hist.observe(1e-5);
                           }
                         }) *
                         1e6 / kProbeReps;
  constexpr int kSpanReps = 100'000;
  const double span_ns = best_ms(3, [&] {
                           for (int i = 0; i < kSpanReps; ++i) {
                             obs::Span span("bench.probe_span");
                           }
                         }) *
                         1e6 / kSpanReps;
  // Spans accumulate in the thread buffer; drain so repeated runs in one
  // process don't hit the cap and report drops.
  const auto trace = obs::drain_trace();

  std::printf("counter.inc:                  %10.2f ns/op\n", counter_ns);
  std::printf("histogram.observe:            %10.2f ns/op\n", hist_ns);
  std::printf("span open+close:              %10.2f ns/op\n", span_ns);
  std::printf("spans drained: %zu (dropped %llu)\n", trace.spans.size(),
              static_cast<unsigned long long>(trace.dropped));

  bench::Metrics metrics;
  metrics.add("obs_enabled", obs::kEnabled ? 1.0 : 0.0);
  metrics.add("sar_heatmap_serial_ms", sar_ms);
  metrics.add("counter_inc_ns", counter_ns);
  metrics.add("histogram_observe_ns", hist_ns);
  metrics.add("span_ns", span_ns);
  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  std::printf("wrote %s\n", opts.out.c_str());
  return 0;
}
