
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agc.cpp" "tests/CMakeFiles/rfly_relay_tests.dir/test_agc.cpp.o" "gcc" "tests/CMakeFiles/rfly_relay_tests.dir/test_agc.cpp.o.d"
  "/root/repo/tests/test_coupling.cpp" "tests/CMakeFiles/rfly_relay_tests.dir/test_coupling.cpp.o" "gcc" "tests/CMakeFiles/rfly_relay_tests.dir/test_coupling.cpp.o.d"
  "/root/repo/tests/test_freq_discovery.cpp" "tests/CMakeFiles/rfly_relay_tests.dir/test_freq_discovery.cpp.o" "gcc" "tests/CMakeFiles/rfly_relay_tests.dir/test_freq_discovery.cpp.o.d"
  "/root/repo/tests/test_gain_control.cpp" "tests/CMakeFiles/rfly_relay_tests.dir/test_gain_control.cpp.o" "gcc" "tests/CMakeFiles/rfly_relay_tests.dir/test_gain_control.cpp.o.d"
  "/root/repo/tests/test_hopping.cpp" "tests/CMakeFiles/rfly_relay_tests.dir/test_hopping.cpp.o" "gcc" "tests/CMakeFiles/rfly_relay_tests.dir/test_hopping.cpp.o.d"
  "/root/repo/tests/test_isolation.cpp" "tests/CMakeFiles/rfly_relay_tests.dir/test_isolation.cpp.o" "gcc" "tests/CMakeFiles/rfly_relay_tests.dir/test_isolation.cpp.o.d"
  "/root/repo/tests/test_mirrored.cpp" "tests/CMakeFiles/rfly_relay_tests.dir/test_mirrored.cpp.o" "gcc" "tests/CMakeFiles/rfly_relay_tests.dir/test_mirrored.cpp.o.d"
  "/root/repo/tests/test_relay_path.cpp" "tests/CMakeFiles/rfly_relay_tests.dir/test_relay_path.cpp.o" "gcc" "tests/CMakeFiles/rfly_relay_tests.dir/test_relay_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/rfly_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/rfly_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/localize/CMakeFiles/rfly_localize.dir/DependInfo.cmake"
  "/root/repo/build/src/drone/CMakeFiles/rfly_drone.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfly_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
