file(REMOVE_RECURSE
  "CMakeFiles/rfly_relay_tests.dir/test_agc.cpp.o"
  "CMakeFiles/rfly_relay_tests.dir/test_agc.cpp.o.d"
  "CMakeFiles/rfly_relay_tests.dir/test_coupling.cpp.o"
  "CMakeFiles/rfly_relay_tests.dir/test_coupling.cpp.o.d"
  "CMakeFiles/rfly_relay_tests.dir/test_freq_discovery.cpp.o"
  "CMakeFiles/rfly_relay_tests.dir/test_freq_discovery.cpp.o.d"
  "CMakeFiles/rfly_relay_tests.dir/test_gain_control.cpp.o"
  "CMakeFiles/rfly_relay_tests.dir/test_gain_control.cpp.o.d"
  "CMakeFiles/rfly_relay_tests.dir/test_hopping.cpp.o"
  "CMakeFiles/rfly_relay_tests.dir/test_hopping.cpp.o.d"
  "CMakeFiles/rfly_relay_tests.dir/test_isolation.cpp.o"
  "CMakeFiles/rfly_relay_tests.dir/test_isolation.cpp.o.d"
  "CMakeFiles/rfly_relay_tests.dir/test_mirrored.cpp.o"
  "CMakeFiles/rfly_relay_tests.dir/test_mirrored.cpp.o.d"
  "CMakeFiles/rfly_relay_tests.dir/test_relay_path.cpp.o"
  "CMakeFiles/rfly_relay_tests.dir/test_relay_path.cpp.o.d"
  "rfly_relay_tests"
  "rfly_relay_tests.pdb"
  "rfly_relay_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_relay_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
