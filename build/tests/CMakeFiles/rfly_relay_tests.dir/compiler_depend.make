# Empty compiler generated dependencies file for rfly_relay_tests.
# This may be replaced when dependencies are built.
