file(REMOVE_RECURSE
  "CMakeFiles/rfly_property_tests.dir/test_properties.cpp.o"
  "CMakeFiles/rfly_property_tests.dir/test_properties.cpp.o.d"
  "rfly_property_tests"
  "rfly_property_tests.pdb"
  "rfly_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
