# Empty compiler generated dependencies file for rfly_property_tests.
# This may be replaced when dependencies are built.
