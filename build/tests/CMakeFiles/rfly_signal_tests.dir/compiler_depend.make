# Empty compiler generated dependencies file for rfly_signal_tests.
# This may be replaced when dependencies are built.
