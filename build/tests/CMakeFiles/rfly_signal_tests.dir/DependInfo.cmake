
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_amplifier.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_amplifier.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_amplifier.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_correlate.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_correlate.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_correlate.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_filter.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_filter.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_filter.cpp.o.d"
  "/root/repo/tests/test_noise.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_noise.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_noise.cpp.o.d"
  "/root/repo/tests/test_oscillator.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_oscillator.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_oscillator.cpp.o.d"
  "/root/repo/tests/test_signal_extras.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_signal_extras.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_signal_extras.cpp.o.d"
  "/root/repo/tests/test_spectrum.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_spectrum.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_spectrum.cpp.o.d"
  "/root/repo/tests/test_waveform.cpp" "tests/CMakeFiles/rfly_signal_tests.dir/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/rfly_signal_tests.dir/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/rfly_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/rfly_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/localize/CMakeFiles/rfly_localize.dir/DependInfo.cmake"
  "/root/repo/build/src/drone/CMakeFiles/rfly_drone.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfly_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
