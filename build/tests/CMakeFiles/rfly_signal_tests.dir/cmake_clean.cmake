file(REMOVE_RECURSE
  "CMakeFiles/rfly_signal_tests.dir/test_amplifier.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_amplifier.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_common.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_correlate.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_correlate.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_fft.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_fft.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_filter.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_filter.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_noise.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_noise.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_oscillator.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_oscillator.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_signal_extras.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_signal_extras.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_spectrum.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_spectrum.cpp.o.d"
  "CMakeFiles/rfly_signal_tests.dir/test_waveform.cpp.o"
  "CMakeFiles/rfly_signal_tests.dir/test_waveform.cpp.o.d"
  "rfly_signal_tests"
  "rfly_signal_tests.pdb"
  "rfly_signal_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_signal_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
