file(REMOVE_RECURSE
  "CMakeFiles/rfly_gen2_tests.dir/test_access.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_access.cpp.o.d"
  "CMakeFiles/rfly_gen2_tests.dir/test_commands.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_commands.cpp.o.d"
  "CMakeFiles/rfly_gen2_tests.dir/test_crc.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_crc.cpp.o.d"
  "CMakeFiles/rfly_gen2_tests.dir/test_fm0.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_fm0.cpp.o.d"
  "CMakeFiles/rfly_gen2_tests.dir/test_miller.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_miller.cpp.o.d"
  "CMakeFiles/rfly_gen2_tests.dir/test_persistence.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_persistence.cpp.o.d"
  "CMakeFiles/rfly_gen2_tests.dir/test_pie.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_pie.cpp.o.d"
  "CMakeFiles/rfly_gen2_tests.dir/test_sgtin.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_sgtin.cpp.o.d"
  "CMakeFiles/rfly_gen2_tests.dir/test_tag.cpp.o"
  "CMakeFiles/rfly_gen2_tests.dir/test_tag.cpp.o.d"
  "rfly_gen2_tests"
  "rfly_gen2_tests.pdb"
  "rfly_gen2_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_gen2_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
