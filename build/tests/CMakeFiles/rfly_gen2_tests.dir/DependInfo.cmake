
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_access.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_access.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_access.cpp.o.d"
  "/root/repo/tests/test_commands.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_commands.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_commands.cpp.o.d"
  "/root/repo/tests/test_crc.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_crc.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_crc.cpp.o.d"
  "/root/repo/tests/test_fm0.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_fm0.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_fm0.cpp.o.d"
  "/root/repo/tests/test_miller.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_miller.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_miller.cpp.o.d"
  "/root/repo/tests/test_persistence.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_persistence.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_persistence.cpp.o.d"
  "/root/repo/tests/test_pie.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_pie.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_pie.cpp.o.d"
  "/root/repo/tests/test_sgtin.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_sgtin.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_sgtin.cpp.o.d"
  "/root/repo/tests/test_tag.cpp" "tests/CMakeFiles/rfly_gen2_tests.dir/test_tag.cpp.o" "gcc" "tests/CMakeFiles/rfly_gen2_tests.dir/test_tag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/rfly_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/rfly_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/localize/CMakeFiles/rfly_localize.dir/DependInfo.cmake"
  "/root/repo/build/src/drone/CMakeFiles/rfly_drone.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfly_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
