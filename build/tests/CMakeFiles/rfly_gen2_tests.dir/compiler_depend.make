# Empty compiler generated dependencies file for rfly_gen2_tests.
# This may be replaced when dependencies are built.
