
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_survey.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_adaptive_survey.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_adaptive_survey.cpp.o.d"
  "/root/repo/tests/test_airtime.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_airtime.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_airtime.cpp.o.d"
  "/root/repo/tests/test_airtime_multi.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_airtime_multi.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_airtime_multi.cpp.o.d"
  "/root/repo/tests/test_cross_validation.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_cross_validation.cpp.o.d"
  "/root/repo/tests/test_daisy_chain.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_daisy_chain.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_daisy_chain.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_experiments.cpp.o.d"
  "/root/repo/tests/test_inventory.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_inventory.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_inventory.cpp.o.d"
  "/root/repo/tests/test_scan_mission.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_scan_mission.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_scan_mission.cpp.o.d"
  "/root/repo/tests/test_select_scan.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_select_scan.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_select_scan.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/rfly_core_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/rfly_core_tests.dir/test_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/rfly_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/rfly_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/localize/CMakeFiles/rfly_localize.dir/DependInfo.cmake"
  "/root/repo/build/src/drone/CMakeFiles/rfly_drone.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfly_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
