# Empty dependencies file for rfly_core_tests.
# This may be replaced when dependencies are built.
