file(REMOVE_RECURSE
  "CMakeFiles/rfly_core_tests.dir/test_adaptive_survey.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_adaptive_survey.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_airtime.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_airtime.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_airtime_multi.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_airtime_multi.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_cross_validation.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_cross_validation.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_daisy_chain.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_daisy_chain.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_experiments.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_experiments.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_inventory.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_inventory.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_scan_mission.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_scan_mission.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_select_scan.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_select_scan.cpp.o.d"
  "CMakeFiles/rfly_core_tests.dir/test_system.cpp.o"
  "CMakeFiles/rfly_core_tests.dir/test_system.cpp.o.d"
  "rfly_core_tests"
  "rfly_core_tests.pdb"
  "rfly_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
