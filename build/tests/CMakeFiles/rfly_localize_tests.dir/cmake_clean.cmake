file(REMOVE_RECURSE
  "CMakeFiles/rfly_localize_tests.dir/test_heatmap_io.cpp.o"
  "CMakeFiles/rfly_localize_tests.dir/test_heatmap_io.cpp.o.d"
  "CMakeFiles/rfly_localize_tests.dir/test_localize.cpp.o"
  "CMakeFiles/rfly_localize_tests.dir/test_localize.cpp.o.d"
  "CMakeFiles/rfly_localize_tests.dir/test_reader_localizer.cpp.o"
  "CMakeFiles/rfly_localize_tests.dir/test_reader_localizer.cpp.o.d"
  "CMakeFiles/rfly_localize_tests.dir/test_uncertainty.cpp.o"
  "CMakeFiles/rfly_localize_tests.dir/test_uncertainty.cpp.o.d"
  "rfly_localize_tests"
  "rfly_localize_tests.pdb"
  "rfly_localize_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_localize_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
