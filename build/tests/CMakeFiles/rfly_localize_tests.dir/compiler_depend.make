# Empty compiler generated dependencies file for rfly_localize_tests.
# This may be replaced when dependencies are built.
