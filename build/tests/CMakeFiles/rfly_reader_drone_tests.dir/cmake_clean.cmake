file(REMOVE_RECURSE
  "CMakeFiles/rfly_reader_drone_tests.dir/test_drone.cpp.o"
  "CMakeFiles/rfly_reader_drone_tests.dir/test_drone.cpp.o.d"
  "CMakeFiles/rfly_reader_drone_tests.dir/test_reader.cpp.o"
  "CMakeFiles/rfly_reader_drone_tests.dir/test_reader.cpp.o.d"
  "rfly_reader_drone_tests"
  "rfly_reader_drone_tests.pdb"
  "rfly_reader_drone_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_reader_drone_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
