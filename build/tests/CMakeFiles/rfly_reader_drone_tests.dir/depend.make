# Empty dependencies file for rfly_reader_drone_tests.
# This may be replaced when dependencies are built.
