file(REMOVE_RECURSE
  "CMakeFiles/rfly_channel_tests.dir/test_environment.cpp.o"
  "CMakeFiles/rfly_channel_tests.dir/test_environment.cpp.o.d"
  "CMakeFiles/rfly_channel_tests.dir/test_geometry.cpp.o"
  "CMakeFiles/rfly_channel_tests.dir/test_geometry.cpp.o.d"
  "CMakeFiles/rfly_channel_tests.dir/test_link_budget.cpp.o"
  "CMakeFiles/rfly_channel_tests.dir/test_link_budget.cpp.o.d"
  "CMakeFiles/rfly_channel_tests.dir/test_path_loss.cpp.o"
  "CMakeFiles/rfly_channel_tests.dir/test_path_loss.cpp.o.d"
  "rfly_channel_tests"
  "rfly_channel_tests.pdb"
  "rfly_channel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_channel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
