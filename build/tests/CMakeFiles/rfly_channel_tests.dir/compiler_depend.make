# Empty compiler generated dependencies file for rfly_channel_tests.
# This may be replaced when dependencies are built.
