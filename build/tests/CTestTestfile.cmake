# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rfly_signal_tests[1]_include.cmake")
include("/root/repo/build/tests/rfly_channel_tests[1]_include.cmake")
include("/root/repo/build/tests/rfly_gen2_tests[1]_include.cmake")
include("/root/repo/build/tests/rfly_relay_tests[1]_include.cmake")
include("/root/repo/build/tests/rfly_reader_drone_tests[1]_include.cmake")
include("/root/repo/build/tests/rfly_localize_tests[1]_include.cmake")
include("/root/repo/build/tests/rfly_core_tests[1]_include.cmake")
include("/root/repo/build/tests/rfly_property_tests[1]_include.cmake")
