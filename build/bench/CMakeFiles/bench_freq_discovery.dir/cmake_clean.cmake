file(REMOVE_RECURSE
  "CMakeFiles/bench_freq_discovery.dir/freq_discovery.cpp.o"
  "CMakeFiles/bench_freq_discovery.dir/freq_discovery.cpp.o.d"
  "bench_freq_discovery"
  "bench_freq_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freq_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
