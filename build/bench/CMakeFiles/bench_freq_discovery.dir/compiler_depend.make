# Empty compiler generated dependencies file for bench_freq_discovery.
# This may be replaced when dependencies are built.
