file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_distance.dir/fig14_distance.cpp.o"
  "CMakeFiles/bench_fig14_distance.dir/fig14_distance.cpp.o.d"
  "bench_fig14_distance"
  "bench_fig14_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
