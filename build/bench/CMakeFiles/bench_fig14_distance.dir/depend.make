# Empty dependencies file for bench_fig14_distance.
# This may be replaced when dependencies are built.
