file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_read_range.dir/fig11_read_range.cpp.o"
  "CMakeFiles/bench_fig11_read_range.dir/fig11_read_range.cpp.o.d"
  "bench_fig11_read_range"
  "bench_fig11_read_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_read_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
