# Empty dependencies file for bench_fig11_read_range.
# This may be replaced when dependencies are built.
