# Empty dependencies file for bench_fig12_localization_cdf.
# This may be replaced when dependencies are built.
