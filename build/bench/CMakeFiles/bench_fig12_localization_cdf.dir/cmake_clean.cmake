file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_localization_cdf.dir/fig12_localization_cdf.cpp.o"
  "CMakeFiles/bench_fig12_localization_cdf.dir/fig12_localization_cdf.cpp.o.d"
  "bench_fig12_localization_cdf"
  "bench_fig12_localization_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_localization_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
