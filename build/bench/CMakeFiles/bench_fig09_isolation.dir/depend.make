# Empty dependencies file for bench_fig09_isolation.
# This may be replaced when dependencies are built.
