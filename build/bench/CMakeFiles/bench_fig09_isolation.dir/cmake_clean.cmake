file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_isolation.dir/fig09_isolation.cpp.o"
  "CMakeFiles/bench_fig09_isolation.dir/fig09_isolation.cpp.o.d"
  "bench_fig09_isolation"
  "bench_fig09_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
