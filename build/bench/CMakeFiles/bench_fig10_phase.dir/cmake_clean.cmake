file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_phase.dir/fig10_phase.cpp.o"
  "CMakeFiles/bench_fig10_phase.dir/fig10_phase.cpp.o.d"
  "bench_fig10_phase"
  "bench_fig10_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
