file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_aperture.dir/fig13_aperture.cpp.o"
  "CMakeFiles/bench_fig13_aperture.dir/fig13_aperture.cpp.o.d"
  "bench_fig13_aperture"
  "bench_fig13_aperture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_aperture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
