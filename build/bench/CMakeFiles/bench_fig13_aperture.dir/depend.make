# Empty dependencies file for bench_fig13_aperture.
# This may be replaced when dependencies are built.
