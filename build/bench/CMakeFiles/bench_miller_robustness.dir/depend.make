# Empty dependencies file for bench_miller_robustness.
# This may be replaced when dependencies are built.
