file(REMOVE_RECURSE
  "CMakeFiles/bench_miller_robustness.dir/miller_robustness.cpp.o"
  "CMakeFiles/bench_miller_robustness.dir/miller_robustness.cpp.o.d"
  "bench_miller_robustness"
  "bench_miller_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_miller_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
