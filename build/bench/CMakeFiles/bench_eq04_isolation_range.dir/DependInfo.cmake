
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/eq04_isolation_range.cpp" "bench/CMakeFiles/bench_eq04_isolation_range.dir/eq04_isolation_range.cpp.o" "gcc" "bench/CMakeFiles/bench_eq04_isolation_range.dir/eq04_isolation_range.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relay/CMakeFiles/rfly_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/rfly_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/localize/CMakeFiles/rfly_localize.dir/DependInfo.cmake"
  "/root/repo/build/src/drone/CMakeFiles/rfly_drone.dir/DependInfo.cmake"
  "/root/repo/build/src/gen2/CMakeFiles/rfly_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
