file(REMOVE_RECURSE
  "CMakeFiles/bench_eq04_isolation_range.dir/eq04_isolation_range.cpp.o"
  "CMakeFiles/bench_eq04_isolation_range.dir/eq04_isolation_range.cpp.o.d"
  "bench_eq04_isolation_range"
  "bench_eq04_isolation_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq04_isolation_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
