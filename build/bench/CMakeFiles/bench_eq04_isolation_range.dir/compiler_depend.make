# Empty compiler generated dependencies file for bench_eq04_isolation_range.
# This may be replaced when dependencies are built.
