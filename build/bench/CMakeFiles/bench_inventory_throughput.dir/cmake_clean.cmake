file(REMOVE_RECURSE
  "CMakeFiles/bench_inventory_throughput.dir/inventory_throughput.cpp.o"
  "CMakeFiles/bench_inventory_throughput.dir/inventory_throughput.cpp.o.d"
  "bench_inventory_throughput"
  "bench_inventory_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inventory_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
