# Empty dependencies file for bench_localization_3d.
# This may be replaced when dependencies are built.
