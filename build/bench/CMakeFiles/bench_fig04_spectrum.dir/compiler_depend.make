# Empty compiler generated dependencies file for bench_fig04_spectrum.
# This may be replaced when dependencies are built.
