file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_spectrum.dir/fig04_spectrum.cpp.o"
  "CMakeFiles/bench_fig04_spectrum.dir/fig04_spectrum.cpp.o.d"
  "bench_fig04_spectrum"
  "bench_fig04_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
