file(REMOVE_RECURSE
  "CMakeFiles/bench_daisy_chain.dir/daisy_chain.cpp.o"
  "CMakeFiles/bench_daisy_chain.dir/daisy_chain.cpp.o.d"
  "bench_daisy_chain"
  "bench_daisy_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_daisy_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
