# Empty dependencies file for bench_daisy_chain.
# This may be replaced when dependencies are built.
