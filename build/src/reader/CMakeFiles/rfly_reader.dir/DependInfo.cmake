
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reader/channel_estimator.cpp" "src/reader/CMakeFiles/rfly_reader.dir/channel_estimator.cpp.o" "gcc" "src/reader/CMakeFiles/rfly_reader.dir/channel_estimator.cpp.o.d"
  "/root/repo/src/reader/q_algorithm.cpp" "src/reader/CMakeFiles/rfly_reader.dir/q_algorithm.cpp.o" "gcc" "src/reader/CMakeFiles/rfly_reader.dir/q_algorithm.cpp.o.d"
  "/root/repo/src/reader/reader.cpp" "src/reader/CMakeFiles/rfly_reader.dir/reader.cpp.o" "gcc" "src/reader/CMakeFiles/rfly_reader.dir/reader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen2/CMakeFiles/rfly_gen2.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
