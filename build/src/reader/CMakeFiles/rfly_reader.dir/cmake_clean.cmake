file(REMOVE_RECURSE
  "CMakeFiles/rfly_reader.dir/channel_estimator.cpp.o"
  "CMakeFiles/rfly_reader.dir/channel_estimator.cpp.o.d"
  "CMakeFiles/rfly_reader.dir/q_algorithm.cpp.o"
  "CMakeFiles/rfly_reader.dir/q_algorithm.cpp.o.d"
  "CMakeFiles/rfly_reader.dir/reader.cpp.o"
  "CMakeFiles/rfly_reader.dir/reader.cpp.o.d"
  "librfly_reader.a"
  "librfly_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
