file(REMOVE_RECURSE
  "librfly_reader.a"
)
