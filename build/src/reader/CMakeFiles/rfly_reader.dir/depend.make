# Empty dependencies file for rfly_reader.
# This may be replaced when dependencies are built.
