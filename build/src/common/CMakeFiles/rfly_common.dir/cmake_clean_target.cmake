file(REMOVE_RECURSE
  "librfly_common.a"
)
