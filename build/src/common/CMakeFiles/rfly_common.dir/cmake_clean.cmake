file(REMOVE_RECURSE
  "CMakeFiles/rfly_common.dir/math_util.cpp.o"
  "CMakeFiles/rfly_common.dir/math_util.cpp.o.d"
  "CMakeFiles/rfly_common.dir/rng.cpp.o"
  "CMakeFiles/rfly_common.dir/rng.cpp.o.d"
  "CMakeFiles/rfly_common.dir/stats.cpp.o"
  "CMakeFiles/rfly_common.dir/stats.cpp.o.d"
  "librfly_common.a"
  "librfly_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
