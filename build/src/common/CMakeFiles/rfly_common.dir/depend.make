# Empty dependencies file for rfly_common.
# This may be replaced when dependencies are built.
