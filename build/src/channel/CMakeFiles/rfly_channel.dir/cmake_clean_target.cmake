file(REMOVE_RECURSE
  "librfly_channel.a"
)
