# Empty dependencies file for rfly_channel.
# This may be replaced when dependencies are built.
