# Empty compiler generated dependencies file for rfly_channel.
# This may be replaced when dependencies are built.
