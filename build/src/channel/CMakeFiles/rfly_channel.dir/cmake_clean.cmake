file(REMOVE_RECURSE
  "CMakeFiles/rfly_channel.dir/channel_model.cpp.o"
  "CMakeFiles/rfly_channel.dir/channel_model.cpp.o.d"
  "CMakeFiles/rfly_channel.dir/environment.cpp.o"
  "CMakeFiles/rfly_channel.dir/environment.cpp.o.d"
  "CMakeFiles/rfly_channel.dir/geometry.cpp.o"
  "CMakeFiles/rfly_channel.dir/geometry.cpp.o.d"
  "CMakeFiles/rfly_channel.dir/link_budget.cpp.o"
  "CMakeFiles/rfly_channel.dir/link_budget.cpp.o.d"
  "CMakeFiles/rfly_channel.dir/path_loss.cpp.o"
  "CMakeFiles/rfly_channel.dir/path_loss.cpp.o.d"
  "librfly_channel.a"
  "librfly_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
