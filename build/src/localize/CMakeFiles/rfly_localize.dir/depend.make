# Empty dependencies file for rfly_localize.
# This may be replaced when dependencies are built.
