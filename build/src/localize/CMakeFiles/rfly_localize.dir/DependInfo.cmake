
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/localize/disentangle.cpp" "src/localize/CMakeFiles/rfly_localize.dir/disentangle.cpp.o" "gcc" "src/localize/CMakeFiles/rfly_localize.dir/disentangle.cpp.o.d"
  "/root/repo/src/localize/heatmap_io.cpp" "src/localize/CMakeFiles/rfly_localize.dir/heatmap_io.cpp.o" "gcc" "src/localize/CMakeFiles/rfly_localize.dir/heatmap_io.cpp.o.d"
  "/root/repo/src/localize/localizer.cpp" "src/localize/CMakeFiles/rfly_localize.dir/localizer.cpp.o" "gcc" "src/localize/CMakeFiles/rfly_localize.dir/localizer.cpp.o.d"
  "/root/repo/src/localize/peak.cpp" "src/localize/CMakeFiles/rfly_localize.dir/peak.cpp.o" "gcc" "src/localize/CMakeFiles/rfly_localize.dir/peak.cpp.o.d"
  "/root/repo/src/localize/reader_localizer.cpp" "src/localize/CMakeFiles/rfly_localize.dir/reader_localizer.cpp.o" "gcc" "src/localize/CMakeFiles/rfly_localize.dir/reader_localizer.cpp.o.d"
  "/root/repo/src/localize/rssi.cpp" "src/localize/CMakeFiles/rfly_localize.dir/rssi.cpp.o" "gcc" "src/localize/CMakeFiles/rfly_localize.dir/rssi.cpp.o.d"
  "/root/repo/src/localize/sar.cpp" "src/localize/CMakeFiles/rfly_localize.dir/sar.cpp.o" "gcc" "src/localize/CMakeFiles/rfly_localize.dir/sar.cpp.o.d"
  "/root/repo/src/localize/uncertainty.cpp" "src/localize/CMakeFiles/rfly_localize.dir/uncertainty.cpp.o" "gcc" "src/localize/CMakeFiles/rfly_localize.dir/uncertainty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/drone/CMakeFiles/rfly_drone.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
