file(REMOVE_RECURSE
  "CMakeFiles/rfly_localize.dir/disentangle.cpp.o"
  "CMakeFiles/rfly_localize.dir/disentangle.cpp.o.d"
  "CMakeFiles/rfly_localize.dir/heatmap_io.cpp.o"
  "CMakeFiles/rfly_localize.dir/heatmap_io.cpp.o.d"
  "CMakeFiles/rfly_localize.dir/localizer.cpp.o"
  "CMakeFiles/rfly_localize.dir/localizer.cpp.o.d"
  "CMakeFiles/rfly_localize.dir/peak.cpp.o"
  "CMakeFiles/rfly_localize.dir/peak.cpp.o.d"
  "CMakeFiles/rfly_localize.dir/reader_localizer.cpp.o"
  "CMakeFiles/rfly_localize.dir/reader_localizer.cpp.o.d"
  "CMakeFiles/rfly_localize.dir/rssi.cpp.o"
  "CMakeFiles/rfly_localize.dir/rssi.cpp.o.d"
  "CMakeFiles/rfly_localize.dir/sar.cpp.o"
  "CMakeFiles/rfly_localize.dir/sar.cpp.o.d"
  "CMakeFiles/rfly_localize.dir/uncertainty.cpp.o"
  "CMakeFiles/rfly_localize.dir/uncertainty.cpp.o.d"
  "librfly_localize.a"
  "librfly_localize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_localize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
