file(REMOVE_RECURSE
  "librfly_localize.a"
)
