file(REMOVE_RECURSE
  "CMakeFiles/rfly_gen2.dir/access.cpp.o"
  "CMakeFiles/rfly_gen2.dir/access.cpp.o.d"
  "CMakeFiles/rfly_gen2.dir/commands.cpp.o"
  "CMakeFiles/rfly_gen2.dir/commands.cpp.o.d"
  "CMakeFiles/rfly_gen2.dir/crc.cpp.o"
  "CMakeFiles/rfly_gen2.dir/crc.cpp.o.d"
  "CMakeFiles/rfly_gen2.dir/fm0.cpp.o"
  "CMakeFiles/rfly_gen2.dir/fm0.cpp.o.d"
  "CMakeFiles/rfly_gen2.dir/miller.cpp.o"
  "CMakeFiles/rfly_gen2.dir/miller.cpp.o.d"
  "CMakeFiles/rfly_gen2.dir/pie.cpp.o"
  "CMakeFiles/rfly_gen2.dir/pie.cpp.o.d"
  "CMakeFiles/rfly_gen2.dir/sgtin.cpp.o"
  "CMakeFiles/rfly_gen2.dir/sgtin.cpp.o.d"
  "CMakeFiles/rfly_gen2.dir/tag.cpp.o"
  "CMakeFiles/rfly_gen2.dir/tag.cpp.o.d"
  "librfly_gen2.a"
  "librfly_gen2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_gen2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
