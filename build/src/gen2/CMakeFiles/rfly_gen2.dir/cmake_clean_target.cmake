file(REMOVE_RECURSE
  "librfly_gen2.a"
)
