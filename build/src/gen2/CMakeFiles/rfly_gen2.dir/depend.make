# Empty dependencies file for rfly_gen2.
# This may be replaced when dependencies are built.
