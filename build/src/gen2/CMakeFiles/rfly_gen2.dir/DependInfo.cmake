
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen2/access.cpp" "src/gen2/CMakeFiles/rfly_gen2.dir/access.cpp.o" "gcc" "src/gen2/CMakeFiles/rfly_gen2.dir/access.cpp.o.d"
  "/root/repo/src/gen2/commands.cpp" "src/gen2/CMakeFiles/rfly_gen2.dir/commands.cpp.o" "gcc" "src/gen2/CMakeFiles/rfly_gen2.dir/commands.cpp.o.d"
  "/root/repo/src/gen2/crc.cpp" "src/gen2/CMakeFiles/rfly_gen2.dir/crc.cpp.o" "gcc" "src/gen2/CMakeFiles/rfly_gen2.dir/crc.cpp.o.d"
  "/root/repo/src/gen2/fm0.cpp" "src/gen2/CMakeFiles/rfly_gen2.dir/fm0.cpp.o" "gcc" "src/gen2/CMakeFiles/rfly_gen2.dir/fm0.cpp.o.d"
  "/root/repo/src/gen2/miller.cpp" "src/gen2/CMakeFiles/rfly_gen2.dir/miller.cpp.o" "gcc" "src/gen2/CMakeFiles/rfly_gen2.dir/miller.cpp.o.d"
  "/root/repo/src/gen2/pie.cpp" "src/gen2/CMakeFiles/rfly_gen2.dir/pie.cpp.o" "gcc" "src/gen2/CMakeFiles/rfly_gen2.dir/pie.cpp.o.d"
  "/root/repo/src/gen2/sgtin.cpp" "src/gen2/CMakeFiles/rfly_gen2.dir/sgtin.cpp.o" "gcc" "src/gen2/CMakeFiles/rfly_gen2.dir/sgtin.cpp.o.d"
  "/root/repo/src/gen2/tag.cpp" "src/gen2/CMakeFiles/rfly_gen2.dir/tag.cpp.o" "gcc" "src/gen2/CMakeFiles/rfly_gen2.dir/tag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
