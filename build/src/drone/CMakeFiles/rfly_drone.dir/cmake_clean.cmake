file(REMOVE_RECURSE
  "CMakeFiles/rfly_drone.dir/flight.cpp.o"
  "CMakeFiles/rfly_drone.dir/flight.cpp.o.d"
  "CMakeFiles/rfly_drone.dir/trajectory.cpp.o"
  "CMakeFiles/rfly_drone.dir/trajectory.cpp.o.d"
  "librfly_drone.a"
  "librfly_drone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_drone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
