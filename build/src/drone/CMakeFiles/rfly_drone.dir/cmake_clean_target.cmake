file(REMOVE_RECURSE
  "librfly_drone.a"
)
