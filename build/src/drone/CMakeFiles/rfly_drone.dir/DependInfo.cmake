
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drone/flight.cpp" "src/drone/CMakeFiles/rfly_drone.dir/flight.cpp.o" "gcc" "src/drone/CMakeFiles/rfly_drone.dir/flight.cpp.o.d"
  "/root/repo/src/drone/trajectory.cpp" "src/drone/CMakeFiles/rfly_drone.dir/trajectory.cpp.o" "gcc" "src/drone/CMakeFiles/rfly_drone.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
