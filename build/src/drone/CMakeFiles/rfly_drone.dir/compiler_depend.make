# Empty compiler generated dependencies file for rfly_drone.
# This may be replaced when dependencies are built.
