file(REMOVE_RECURSE
  "CMakeFiles/rfly_relay.dir/analog_relay.cpp.o"
  "CMakeFiles/rfly_relay.dir/analog_relay.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/coupling.cpp.o"
  "CMakeFiles/rfly_relay.dir/coupling.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/freq_discovery.cpp.o"
  "CMakeFiles/rfly_relay.dir/freq_discovery.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/gain_control.cpp.o"
  "CMakeFiles/rfly_relay.dir/gain_control.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/hopping.cpp.o"
  "CMakeFiles/rfly_relay.dir/hopping.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/isolation.cpp.o"
  "CMakeFiles/rfly_relay.dir/isolation.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/mixer.cpp.o"
  "CMakeFiles/rfly_relay.dir/mixer.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/relay_path.cpp.o"
  "CMakeFiles/rfly_relay.dir/relay_path.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/rfly_relay.cpp.o"
  "CMakeFiles/rfly_relay.dir/rfly_relay.cpp.o.d"
  "CMakeFiles/rfly_relay.dir/synthesizer.cpp.o"
  "CMakeFiles/rfly_relay.dir/synthesizer.cpp.o.d"
  "librfly_relay.a"
  "librfly_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
