# Empty compiler generated dependencies file for rfly_relay.
# This may be replaced when dependencies are built.
