
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relay/analog_relay.cpp" "src/relay/CMakeFiles/rfly_relay.dir/analog_relay.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/analog_relay.cpp.o.d"
  "/root/repo/src/relay/coupling.cpp" "src/relay/CMakeFiles/rfly_relay.dir/coupling.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/coupling.cpp.o.d"
  "/root/repo/src/relay/freq_discovery.cpp" "src/relay/CMakeFiles/rfly_relay.dir/freq_discovery.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/freq_discovery.cpp.o.d"
  "/root/repo/src/relay/gain_control.cpp" "src/relay/CMakeFiles/rfly_relay.dir/gain_control.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/gain_control.cpp.o.d"
  "/root/repo/src/relay/hopping.cpp" "src/relay/CMakeFiles/rfly_relay.dir/hopping.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/hopping.cpp.o.d"
  "/root/repo/src/relay/isolation.cpp" "src/relay/CMakeFiles/rfly_relay.dir/isolation.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/isolation.cpp.o.d"
  "/root/repo/src/relay/mixer.cpp" "src/relay/CMakeFiles/rfly_relay.dir/mixer.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/mixer.cpp.o.d"
  "/root/repo/src/relay/relay_path.cpp" "src/relay/CMakeFiles/rfly_relay.dir/relay_path.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/relay_path.cpp.o.d"
  "/root/repo/src/relay/rfly_relay.cpp" "src/relay/CMakeFiles/rfly_relay.dir/rfly_relay.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/rfly_relay.cpp.o.d"
  "/root/repo/src/relay/synthesizer.cpp" "src/relay/CMakeFiles/rfly_relay.dir/synthesizer.cpp.o" "gcc" "src/relay/CMakeFiles/rfly_relay.dir/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/rfly_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rfly_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
