file(REMOVE_RECURSE
  "librfly_relay.a"
)
