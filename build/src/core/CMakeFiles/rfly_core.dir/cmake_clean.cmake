file(REMOVE_RECURSE
  "CMakeFiles/rfly_core.dir/adaptive_survey.cpp.o"
  "CMakeFiles/rfly_core.dir/adaptive_survey.cpp.o.d"
  "CMakeFiles/rfly_core.dir/airtime.cpp.o"
  "CMakeFiles/rfly_core.dir/airtime.cpp.o.d"
  "CMakeFiles/rfly_core.dir/daisy_chain.cpp.o"
  "CMakeFiles/rfly_core.dir/daisy_chain.cpp.o.d"
  "CMakeFiles/rfly_core.dir/experiments.cpp.o"
  "CMakeFiles/rfly_core.dir/experiments.cpp.o.d"
  "CMakeFiles/rfly_core.dir/inventory.cpp.o"
  "CMakeFiles/rfly_core.dir/inventory.cpp.o.d"
  "CMakeFiles/rfly_core.dir/scan_mission.cpp.o"
  "CMakeFiles/rfly_core.dir/scan_mission.cpp.o.d"
  "CMakeFiles/rfly_core.dir/system.cpp.o"
  "CMakeFiles/rfly_core.dir/system.cpp.o.d"
  "librfly_core.a"
  "librfly_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
