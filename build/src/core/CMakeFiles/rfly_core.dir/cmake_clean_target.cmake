file(REMOVE_RECURSE
  "librfly_core.a"
)
