# Empty compiler generated dependencies file for rfly_core.
# This may be replaced when dependencies are built.
