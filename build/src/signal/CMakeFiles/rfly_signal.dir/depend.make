# Empty dependencies file for rfly_signal.
# This may be replaced when dependencies are built.
