file(REMOVE_RECURSE
  "librfly_signal.a"
)
