
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/amplifier.cpp" "src/signal/CMakeFiles/rfly_signal.dir/amplifier.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/amplifier.cpp.o.d"
  "/root/repo/src/signal/correlate.cpp" "src/signal/CMakeFiles/rfly_signal.dir/correlate.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/correlate.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "src/signal/CMakeFiles/rfly_signal.dir/fft.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/fft.cpp.o.d"
  "/root/repo/src/signal/filter.cpp" "src/signal/CMakeFiles/rfly_signal.dir/filter.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/filter.cpp.o.d"
  "/root/repo/src/signal/impairments.cpp" "src/signal/CMakeFiles/rfly_signal.dir/impairments.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/impairments.cpp.o.d"
  "/root/repo/src/signal/noise.cpp" "src/signal/CMakeFiles/rfly_signal.dir/noise.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/noise.cpp.o.d"
  "/root/repo/src/signal/oscillator.cpp" "src/signal/CMakeFiles/rfly_signal.dir/oscillator.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/oscillator.cpp.o.d"
  "/root/repo/src/signal/resampler.cpp" "src/signal/CMakeFiles/rfly_signal.dir/resampler.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/resampler.cpp.o.d"
  "/root/repo/src/signal/spectrum.cpp" "src/signal/CMakeFiles/rfly_signal.dir/spectrum.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/spectrum.cpp.o.d"
  "/root/repo/src/signal/waveform.cpp" "src/signal/CMakeFiles/rfly_signal.dir/waveform.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/waveform.cpp.o.d"
  "/root/repo/src/signal/window.cpp" "src/signal/CMakeFiles/rfly_signal.dir/window.cpp.o" "gcc" "src/signal/CMakeFiles/rfly_signal.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfly_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
