file(REMOVE_RECURSE
  "CMakeFiles/rfly_signal.dir/amplifier.cpp.o"
  "CMakeFiles/rfly_signal.dir/amplifier.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/correlate.cpp.o"
  "CMakeFiles/rfly_signal.dir/correlate.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/fft.cpp.o"
  "CMakeFiles/rfly_signal.dir/fft.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/filter.cpp.o"
  "CMakeFiles/rfly_signal.dir/filter.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/impairments.cpp.o"
  "CMakeFiles/rfly_signal.dir/impairments.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/noise.cpp.o"
  "CMakeFiles/rfly_signal.dir/noise.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/oscillator.cpp.o"
  "CMakeFiles/rfly_signal.dir/oscillator.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/resampler.cpp.o"
  "CMakeFiles/rfly_signal.dir/resampler.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/spectrum.cpp.o"
  "CMakeFiles/rfly_signal.dir/spectrum.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/waveform.cpp.o"
  "CMakeFiles/rfly_signal.dir/waveform.cpp.o.d"
  "CMakeFiles/rfly_signal.dir/window.cpp.o"
  "CMakeFiles/rfly_signal.dir/window.cpp.o.d"
  "librfly_signal.a"
  "librfly_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfly_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
