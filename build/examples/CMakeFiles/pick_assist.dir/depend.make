# Empty dependencies file for pick_assist.
# This may be replaced when dependencies are built.
