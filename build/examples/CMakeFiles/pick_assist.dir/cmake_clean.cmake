file(REMOVE_RECURSE
  "CMakeFiles/pick_assist.dir/pick_assist.cpp.o"
  "CMakeFiles/pick_assist.dir/pick_assist.cpp.o.d"
  "pick_assist"
  "pick_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pick_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
