# Empty dependencies file for multipath_localization.
# This may be replaced when dependencies are built.
