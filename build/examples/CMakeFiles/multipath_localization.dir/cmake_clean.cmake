file(REMOVE_RECURSE
  "CMakeFiles/multipath_localization.dir/multipath_localization.cpp.o"
  "CMakeFiles/multipath_localization.dir/multipath_localization.cpp.o.d"
  "multipath_localization"
  "multipath_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
