file(REMOVE_RECURSE
  "CMakeFiles/warehouse_scan.dir/warehouse_scan.cpp.o"
  "CMakeFiles/warehouse_scan.dir/warehouse_scan.cpp.o.d"
  "warehouse_scan"
  "warehouse_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
