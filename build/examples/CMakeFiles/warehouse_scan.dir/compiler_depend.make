# Empty compiler generated dependencies file for warehouse_scan.
# This may be replaced when dependencies are built.
