# Empty compiler generated dependencies file for relay_link_planner.
# This may be replaced when dependencies are built.
