file(REMOVE_RECURSE
  "CMakeFiles/relay_link_planner.dir/relay_link_planner.cpp.o"
  "CMakeFiles/relay_link_planner.dir/relay_link_planner.cpp.o.d"
  "relay_link_planner"
  "relay_link_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relay_link_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
