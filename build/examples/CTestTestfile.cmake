# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warehouse_scan "/root/repo/build/examples/warehouse_scan")
set_tests_properties(example_warehouse_scan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multipath_localization "/root/repo/build/examples/multipath_localization")
set_tests_properties(example_multipath_localization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_relay_link_planner "/root/repo/build/examples/relay_link_planner")
set_tests_properties(example_relay_link_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pick_assist "/root/repo/build/examples/pick_assist")
set_tests_properties(example_pick_assist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
