// Multipath localization walkthrough (paper Fig. 6): shows the SAR heatmap
// in a clean scene and in a scene with a strong reflector, and why RFly
// picks the peak *nearest the trajectory* instead of the highest one.
#include <cmath>
#include <cstdio>

#include "channel/path_loss.h"
#include "drone/trajectory.h"
#include "localize/localizer.h"

using namespace rfly;
using namespace rfly::localize;
using channel::Vec3;

namespace {

MeasurementSet synthesize(const std::vector<Vec3>& trajectory, const Vec3& tag,
                          double ghost_gain, const Vec3& ghost) {
  MeasurementSet set;
  for (const auto& p : trajectory) {
    const cdouble h1 =
        channel::propagation_coefficient(p.distance_to({0, 0, 1}), 915e6);
    cdouble h2 = channel::propagation_coefficient(p.distance_to(tag), 916e6);
    if (ghost_gain > 0.0) {
      h2 += ghost_gain * channel::propagation_coefficient(p.distance_to(ghost), 916e6);
    }
    RelayMeasurement m;
    m.relay_position = p;
    m.embedded_channel = h1 * h1 * 1e-3;
    m.target_channel = h1 * h1 * h2 * h2;
    set.push_back(m);
  }
  return set;
}

void render(const Heatmap& map, const Vec3& tag, double est_x, double est_y) {
  static const char kShades[] = " .:-=+*#%@";
  const double peak = map.max_value();
  for (std::size_t iy = map.grid.ny(); iy-- > 0;) {
    std::printf("  ");
    for (std::size_t ix = 0; ix < map.grid.nx(); ++ix) {
      const double x = map.grid.x_at(ix);
      const double y = map.grid.y_at(iy);
      char c = kShades[static_cast<int>(9.0 * map.at(ix, iy) / peak)];
      if (std::hypot(x - tag.x, y - tag.y) < 0.12) c = 'T';
      if (std::hypot(x - est_x, y - est_y) < 0.12) c = 'X';
      std::putchar(c);
    }
    std::printf("\n");
  }
}

void scene(const char* title, double ghost_gain) {
  std::printf("\n=== %s ===\n", title);
  const auto traj = drone::linear_trajectory({4.0, 2.0, 1.0}, {6.0, 2.4, 1.0}, 40);
  const Vec3 tag{5.0, 0.5, 0.0};
  const Vec3 ghost{6.5, 4.5, 0.0};
  const auto set = synthesize(traj, tag, ghost_gain, ghost);

  LocalizerConfig cfg;
  cfg.freq_hz = 916e6;
  cfg.grid = {3.0, 8.0, -1.0, 7.0, 0.02};
  cfg.peak_threshold_fraction = 0.35;

  cfg.selection = PeakSelection::kHighest;
  const auto naive = localize_2d(set, cfg);
  cfg.selection = PeakSelection::kNearestToTrajectory;
  const auto rfly = localize_2d(set, cfg);

  GridSpec render_grid{3.0, 8.0, -1.0, 7.0, 0.12};
  const auto map = sar_heatmap(disentangle(set), render_grid, cfg.freq_hz);
  render(map, tag, rfly ? rfly->x : 0, rfly ? rfly->y : 0);

  if (naive && rfly) {
    std::printf("highest peak        -> (%.2f, %.2f), error %.2f m\n", naive->x,
                naive->y, std::hypot(naive->x - tag.x, naive->y - tag.y));
    std::printf("nearest to path (X) -> (%.2f, %.2f), error %.2f m\n", rfly->x,
                rfly->y, std::hypot(rfly->x - tag.x, rfly->y - tag.y));
    std::printf("candidates above threshold: %zu (value / distance-to-path)\n",
                rfly->candidates.size());
    for (const auto& p : rfly->candidates) {
      std::printf("   (%.2f, %.2f)  value %.3g  dist %.2f m\n", p.x, p.y, p.value,
                  p.distance_to_trajectory);
    }
  }
}

}  // namespace

int main() {
  std::printf("RFly multipath localization (paper Fig. 6)\n");
  std::printf("T = true tag, X = RFly estimate, brighter = higher P(x,y)\n");
  scene("(a) line of sight: single sharp peak at the tag", 0.0);
  scene("(b) strong multipath: ghost lobes appear beyond the tag", 0.8);
  std::printf("\nGhost lobes come from a reflection with a *longer* path, so they\n"
              "always sit further from the flight path than the true tag — the\n"
              "nearest-peak rule (Section 5.2) exploits exactly that.\n");
  return 0;
}
