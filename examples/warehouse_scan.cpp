// Warehouse scan: the paper's motivating scenario, driven through the
// scenario engine. A warehouse with steel shelf rows holds tagged items a
// fixed reader could never reach; the drone flies a lawnmower pattern down
// the aisles, and every discovered tag is localized from the through-relay
// channel measurements and looked up in the item database. The whole
// deployment — environment, reader, flight plan, tag population — is the
// `warehouse` preset; this file only prints the report (run the same
// mission from the command line with `scenario_runner --scenario warehouse`).
// Observability: `warehouse_scan --report` appends the span tree + metric
// table after the scan report; `--trace-out FILE` writes the Chrome trace.
// With no flags the output is byte-identical to the pre-obs binary (the
// golden in test_obs.cpp holds this to account).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "sim/pipeline.h"

using namespace rfly;

int main(int argc, char** argv) {
  bench::CliOptions opts;
  if (!opts.parse(argc, argv)) return 2;

  std::printf("RFly warehouse scan\n===================\n");

  const auto scenario = sim::preset("warehouse");
  const auto run = sim::run_scenario(*scenario);
  if (!run) {
    std::fprintf(stderr, "%s\n", run.status().to_string().c_str());
    return 1;
  }
  const auto& report = run->report;
  const auto& tags = scenario->tags;
  std::printf("flight: %.0f m of aisle; discovered %zu/%zu, localized %zu\n",
              report.flight_length_m, report.discovered, tags.size(),
              report.localized);

  std::printf("\n%-20s %11s %13s %8s\n", "item", "true(x,y)", "est(x,y)",
              "err_cm");
  double worst = 0.0;
  for (std::size_t i = 0; i < report.items.size(); ++i) {
    const auto& item = report.items[i];
    if (!item.discovered) {
      std::printf("%-20s NOT FOUND (out of range along the whole flight)\n",
                  item.description.c_str());
      continue;
    }
    if (!item.localized) {
      std::printf("%-20s read but not localizable (%zu measurements)\n",
                  item.description.c_str(), item.measurements);
      continue;
    }
    const double err = std::hypot(item.estimate.x - tags[i].position.x,
                                  item.estimate.y - tags[i].position.y);
    worst = std::max(worst, err);
    std::printf("%-20s (%4.1f,%4.1f)  (%5.1f,%5.1f) %8.1f\n",
                item.description.c_str(), tags[i].position.x, tags[i].position.y,
                item.estimate.x, item.estimate.y, 100.0 * err);
  }

  std::printf("\nworst error %.1f cm\n", 100.0 * worst);
  std::printf("(meter-scale outliers are heavy-multipath ghosts -- the tail the\n"
              " paper also reports: its 90th-percentile error is 53 cm)\n");
  std::printf("(a fixed reader at the door reads none of them: max direct range"
              " ~6 m)\n");

  bench::Metrics metrics;
  metrics.add("discovered", static_cast<double>(report.discovered));
  metrics.add("localized", static_cast<double>(report.localized));
  metrics.add("worst_error_cm", 100.0 * worst);
  if (!bench::finish_observability(opts, metrics)) return 1;
  if (!metrics.write(opts.out)) return 1;
  return 0;
}
