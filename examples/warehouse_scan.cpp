// Warehouse scan: the paper's motivating scenario, driven through the
// core::run_scan_mission API. A warehouse with steel shelf rows holds
// tagged items a fixed reader could never reach; the drone flies a
// lawnmower pattern down the aisles, and every discovered tag is localized
// from the through-relay channel measurements and looked up in the item
// database.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/scan_mission.h"
#include "drone/trajectory.h"

using namespace rfly;
using namespace rfly::core;

int main() {
  std::printf("RFly warehouse scan\n===================\n");

  // --- Warehouse: 40 x 30 m, two steel shelf rows; aisles at y=5, 15, 25.
  const auto environment = channel::warehouse_environment(40.0, 30.0, 2);

  ScanMissionConfig mission;
  // Ceiling-mounted reader: high enough that its rays clear the 2.5 m
  // shelf tops at range.
  const Vec3 reader_position{1.0, 15.0, 4.0};

  // --- Item database: tagged stock placed along the aisles, below the
  // flight lines (tags_below_path default).
  InventoryDatabase db;
  std::vector<TagPlacement> tags;
  const char* names[] = {"pallet of drills",   "box of jackets", "solvent drums",
                         "printer cartridges", "bike frames",    "copper spools",
                         "server chassis",     "ceramic tiles",  "seed bags"};
  Rng placement(11);
  for (std::uint32_t i = 0; i < 9; ++i) {
    TagPlacement tag;
    tag.config.epc = make_epc(i);
    const double aisle_y = 5.0 + 10.0 * static_cast<double>(i % 3);
    tag.position = {6.0 + 8.0 * static_cast<double>(i / 3) +
                        placement.uniform(-1.0, 1.0),
                    aisle_y + placement.uniform(-1.0, 1.0), 0.0};
    db.add(tag.config.epc, names[i]);
    tags.push_back(tag);
  }

  // --- Flight plan: a pass down each aisle, slightly above the tag rows.
  std::vector<Vec3> plan;
  for (double aisle_y : {5.0, 15.0, 25.0}) {
    const auto row = drone::linear_trajectory({1.0, aisle_y + 1.6, 1.2},
                                              {39.0, aisle_y + 1.8, 1.2}, 140);
    plan.insert(plan.end(), row.begin(), row.end());
  }

  const auto report =
      run_scan_mission(mission, environment, reader_position, plan, tags, db, 23);
  std::printf("flight: %.0f m of aisle; discovered %zu/%zu, localized %zu\n",
              report.flight_length_m, report.discovered, tags.size(),
              report.localized);

  std::printf("\n%-20s %11s %13s %8s\n", "item", "true(x,y)", "est(x,y)",
              "err_cm");
  double worst = 0.0;
  for (std::size_t i = 0; i < report.items.size(); ++i) {
    const auto& item = report.items[i];
    if (!item.discovered) {
      std::printf("%-20s NOT FOUND (out of range along the whole flight)\n",
                  db.lookup(item.epc).c_str());
      continue;
    }
    if (!item.localized) {
      std::printf("%-20s read but not localizable (%zu measurements)\n",
                  db.lookup(item.epc).c_str(), item.measurements);
      continue;
    }
    const double err = std::hypot(item.estimate.x - tags[i].position.x,
                                  item.estimate.y - tags[i].position.y);
    worst = std::max(worst, err);
    std::printf("%-20s (%4.1f,%4.1f)  (%5.1f,%5.1f) %8.1f\n",
                item.description.c_str(), tags[i].position.x, tags[i].position.y,
                item.estimate.x, item.estimate.y, 100.0 * err);
  }

  std::printf("\nworst error %.1f cm\n", 100.0 * worst);
  std::printf("(meter-scale outliers are heavy-multipath ghosts -- the tail the\n"
              " paper also reports: its 90th-percentile error is 53 cm)\n");
  std::printf("(a fixed reader at the door reads none of them: max direct range"
              " ~6 m)\n");
  return 0;
}
