// Pick assist: the downstream story the paper motivates — a warehouse
// robot needs one specific item's exact shelf slot. The workflow:
//   1. decode the wanted item's SGTIN-96 identity,
//   2. fly an adaptive survey: a first pass, confidence assessment, and an
//      orthogonal refinement leg if the estimate is ambiguous or broad,
//   3. read the tag's TID and user memory through the relay at waveform
//      level (a sensor-augmented tag would report, e.g., temperature).
#include <cmath>
#include <cstdio>

#include "common/units.h"
#include "core/adaptive_survey.h"
#include "core/airtime.h"
#include "drone/trajectory.h"
#include "gen2/access.h"
#include "gen2/sgtin.h"
#include "reader/channel_estimator.h"

using namespace rfly;
using namespace rfly::core;

int main() {
  std::printf("RFly pick assist\n================\n");

  // --- 1. The order line: an SGTIN-96 identity for the wanted pallet.
  gen2::Sgtin96 wanted;
  wanted.filter = 3;  // pallet
  wanted.company_prefix = 0x0A1B2C;
  wanted.item_reference = 0x00042;
  wanted.serial = 1337;
  const auto epc = gen2::sgtin96_encode(wanted);
  if (!epc) {
    std::printf("bad SGTIN fields\n");
    return 1;
  }
  std::printf("wanted: company %06llx item %05llx serial %llu\n",
              static_cast<unsigned long long>(wanted.company_prefix),
              static_cast<unsigned long long>(wanted.item_reference),
              static_cast<unsigned long long>(wanted.serial));

  // --- 2. Adaptive survey in the aisle.
  SystemConfig sys_cfg;
  const RflySystem system(sys_cfg, channel::Environment{}, {0.0, 0.0, 2.0});
  const Vec3 true_position{12.0, 6.0, 0.0};

  // Short first pass (as if cued by a coarse inventory hit).
  const auto plan = drone::linear_trajectory({11.5, 8.0, 1.0}, {12.5, 8.1, 1.0}, 25);
  AdaptiveSurveyConfig survey;
  const auto result = adaptive_localize(system, plan, true_position, survey, 99);
  if (!result.localized) {
    std::printf("survey failed\n");
    return 1;
  }
  std::printf("\nfirst-pass confidence: ambiguity %.2f, halfwidths %.2f x %.2f m\n",
              result.initial_confidence.ambiguity,
              result.initial_confidence.halfwidth_x_m,
              result.initial_confidence.halfwidth_y_m);
  std::printf("refinement leg flown: %s\n", result.refinement_flown ? "yes" : "no");
  const double err = std::hypot(result.estimate.x - true_position.x,
                                result.estimate.y - true_position.y);
  std::printf("estimate (%.2f, %.2f), true (%.2f, %.2f): error %.1f cm\n",
              result.estimate.x, result.estimate.y, true_position.x,
              true_position.y, 100.0 * err);
  std::printf("final confidence: ambiguity %.2f, halfwidths %.2f x %.2f m -> %s\n",
              result.final_confidence.ambiguity,
              result.final_confidence.halfwidth_x_m,
              result.final_confidence.halfwidth_y_m,
              result.final_confidence.reliable ? "RELIABLE" : "uncertain");

  // --- 3. Waveform-level access: inventory, Req_RN, then Read TID and a
  // user-memory word, all through the relay hovering by the shelf.
  gen2::TagConfig tag_cfg;
  tag_cfg.epc = *epc;
  tag_cfg.user_memory[0] = 0x1A5C;  // e.g. a logged temperature sample
  gen2::Tag tag(tag_cfg, 4242);

  reader::Reader rdr{reader::ReaderConfig{}};
  ExchangeConfig air;
  air.h_reader_relay = cdouble{db_to_amplitude(-55.0), 0.0};
  air.h_relay_tag = cdouble{db_to_amplitude(-36.0), 0.0};
  Rng rng(7);
  relay::RflyRelayConfig relay_cfg;
  const auto coupling = relay::Coupling{};  // hovering close: wired-grade link

  auto exchange = [&](const gen2::Command& cmd, std::size_t reply_bits) {
    auto r1 = relay::make_rfly_relay(relay_cfg, 31);
    auto r2 = relay::make_rfly_relay(relay_cfg, 31);
    return run_relay_exchange(rdr, cmd, reply_bits, tag, *r1, *r2, coupling, air,
                              rng);
  };

  gen2::QueryCommand query;
  query.q = 0;
  const auto q_res = exchange(gen2::Command{query}, gen2::kRn16Bits);
  if (!q_res.tag_replied) {
    std::printf("tag did not answer the query\n");
    return 1;
  }
  exchange(gen2::Command{gen2::AckCommand{tag.current_rn16()}},
           gen2::kEpcReplyBits);
  exchange(gen2::Command{gen2::ReqRnCommand{tag.current_rn16()}},
           gen2::handle_reply_bits());

  gen2::ReadCommand read_tid;
  read_tid.bank = gen2::MemoryBank::kTid;
  read_tid.word_count = 2;
  read_tid.handle = tag.current_handle();
  const auto tid_res =
      exchange(gen2::Command{read_tid}, gen2::read_reply_bits(2));
  if (tid_res.tag_replied) {
    const auto decoded = gen2::decode_read_reply(tid_res.reply->bits, 2);
    if (decoded) {
      std::printf("\nTID through relay: %04x %04x (EPCglobal class/vendor)\n",
                  decoded->words[0], decoded->words[1]);
    }
  }

  gen2::ReadCommand read_user;
  read_user.bank = gen2::MemoryBank::kUser;
  read_user.word_count = 1;
  read_user.handle = tag.current_handle();
  const auto user_res =
      exchange(gen2::Command{read_user}, gen2::read_reply_bits(1));
  if (user_res.tag_replied) {
    const auto decoded = gen2::decode_read_reply(user_res.reply->bits, 1);
    if (decoded) {
      std::printf("user word 0 through relay: 0x%04x\n", decoded->words[0]);
    }
  }

  std::printf("\nrobot dispatched to (%.2f, %.2f)\n", result.estimate.x,
              result.estimate.y);
  return 0;
}
