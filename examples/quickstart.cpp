// Quickstart: the smallest end-to-end RFly run.
//
// A reader sits at the door of a room; a tag is 30 m away — far beyond
// direct read range. A drone carrying the relay flies a 2 m pass near the
// tag. We (1) check the link budget, (2) collect through-relay channel
// measurements along the flight, and (3) localize the tag with the SAR
// matched filter, picking the peak nearest the flight path.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/system.h"
#include "drone/flight.h"
#include "drone/trajectory.h"
#include "localize/localizer.h"

using namespace rfly;
using namespace rfly::core;

int main() {
  // --- 1. The world: empty floor, reader at the origin, tag 30 m out. ---
  SystemConfig config;
  channel::Environment environment;  // free space (add walls for NLoS)
  const Vec3 reader_position{0.0, 0.0, 1.0};
  const Vec3 tag_position{30.0, 4.0, 0.0};
  RflySystem system(config, environment, reader_position);

  std::printf("RFly quickstart\n===============\n");
  std::printf("reader at (0, 0); tag at (%.0f, %.0f)\n", tag_position.x,
              tag_position.y);

  // Without the relay the tag is far out of range:
  std::printf("direct incident power at tag: %.1f dBm (needs >= %.0f dBm)\n",
              system.direct_tag_incident_power_dbm(tag_position),
              config.tag.sensitivity_dbm);

  // --- 2. Fly the relay past the tag and collect measurements. ---
  const auto plan = drone::linear_trajectory({29.0, 6.0, 1.2}, {31.0, 6.15, 1.2}, 40);
  Rng rng(7);
  const auto flight =
      drone::fly(plan, drone::FlightConfig{}, drone::optitrack_tracking(), rng);

  std::printf("relay incident power at tag (mid-flight): %.1f dBm -> powered\n",
              system.tag_incident_power_dbm(flight[20].actual, tag_position));

  const auto measurements = system.collect_measurements(flight, tag_position, rng);
  std::printf("collected %zu channel measurements along a %.1f m aperture\n",
              measurements.size(), drone::trajectory_length(plan));

  // --- 3. Localize: disentangle the half-links, SAR matched filter. ---
  // The SAR search runs the fast SIMD kernel here (config.kernel); the
  // default is the exact libm loop, bit-identical to the original
  // implementation. `fast` picks the widest ISA this CPU supports at
  // runtime and typically localizes an order of magnitude faster.
  localize::LocalizerConfig loc;
  loc.freq_hz = config.carrier_hz + config.freq_shift_hz;
  loc.grid = {27.0, 33.0, 1.0, 5.5, 0.01};
  loc.kernel = localize::SarKernel::kFast;
  std::printf("SAR kernel: fast (%s)\n", localize::sar_kernel_active().isa);
  const auto result = localize::localize_2d(measurements, loc);
  if (!result) {
    std::printf("localization failed (no usable measurements)\n");
    return 1;
  }

  const double error =
      std::hypot(result->x - tag_position.x, result->y - tag_position.y);
  std::printf("estimated tag position: (%.2f, %.2f)\n", result->x, result->y);
  std::printf("true tag position:      (%.2f, %.2f)\n", tag_position.x,
              tag_position.y);
  std::printf("localization error:     %.1f cm\n", 100.0 * error);
  return 0;
}
