// Relay link planner: the Section 4/6.1 engineering workflow as a tool.
// Given a deployment's geometry, it measures the relay's isolations, plans
// the VGA gains against the stability constraints, and reports the
// resulting powering range, read range, and margins (Eq. 3/4).
#include <algorithm>
#include <cstdio>

#include "channel/link_budget.h"
#include "channel/path_loss.h"
#include "common/constants.h"
#include "core/system.h"
#include "relay/gain_control.h"
#include "relay/isolation.h"

using namespace rfly;

int main() {
  std::printf("RFly relay link planner\n=======================\n\n");

  // 1. Characterize the board: measure the four isolations (Fig. 9 bench).
  relay::RflyRelayConfig hw;
  auto factory = [&hw] { return relay::make_rfly_relay(hw, 2718); };
  const auto iso = relay::measure_all_isolations(factory, hw.freq_shift_hz, {});
  std::printf("measured isolations:\n");
  std::printf("  intra-downlink  %6.1f dB\n", iso.intra_downlink.isolation_db);
  std::printf("  intra-uplink    %6.1f dB\n", iso.intra_uplink.isolation_db);
  std::printf("  inter down->up  %6.1f dB\n", iso.inter_downlink_uplink.isolation_db);
  std::printf("  inter up->down  %6.1f dB\n", iso.inter_uplink_downlink.isolation_db);

  // 2. Plan the gains subject to the stability margins (Section 6.1).
  relay::GainPlanInput plan_in;
  plan_in.intra_downlink_isolation_db = iso.intra_downlink.isolation_db;
  plan_in.intra_uplink_isolation_db = iso.intra_uplink.isolation_db;
  plan_in.inter_downlink_uplink_isolation_db =
      iso.inter_downlink_uplink.isolation_db;
  plan_in.inter_uplink_downlink_isolation_db =
      iso.inter_uplink_downlink.isolation_db;
  plan_in.margin_db = 10.0;
  const auto plan = relay::plan_gains(plan_in);
  std::printf("\ngain plan (10 dB stability margin):\n");
  std::printf("  downlink gain %5.1f dB (maximized first: powers the tags)\n",
              plan.downlink_gain_db);
  std::printf("  uplink gain   %5.1f dB\n", plan.uplink_gain_db);
  std::printf("  feasible: %s\n", plan.feasible ? "yes" : "NO");

  // 3. Range predictions.
  const double weakest = std::min({iso.intra_downlink.isolation_db,
                                   iso.intra_uplink.isolation_db,
                                   iso.inter_downlink_uplink.isolation_db,
                                   iso.inter_uplink_downlink.isolation_db});
  std::printf("\nrange predictions at 915 MHz:\n");
  std::printf("  stability-limited reader-relay range (Eq. 4): %.1f m\n",
              channel::max_relay_range_m(weakest, 915e6));

  core::SystemConfig sys;
  sys.relay_downlink_gain_db = plan.downlink_gain_db;
  sys.relay_uplink_gain_db = plan.uplink_gain_db;
  core::RflySystem system(sys, channel::Environment{}, {0, 0, 1});

  // Walk the relay out until the tag 2 m beyond it loses power or SNR.
  double powering_limit = 0.0;
  double snr_limit = 0.0;
  for (double d = 2.0; d < 300.0; d += 1.0) {
    const core::Vec3 relay_pos{d, 0.0, 1.0};
    const core::Vec3 tag_pos{d + 2.0, 0.0, 0.5};
    if (powering_limit == 0.0 &&
        system.tag_incident_power_dbm(relay_pos, tag_pos) < sys.tag.sensitivity_dbm) {
      powering_limit = d;
    }
    if (snr_limit == 0.0 &&
        system.reply_snr_db(relay_pos, tag_pos) < sys.decode_snr_threshold_db) {
      snr_limit = d;
    }
  }
  if (powering_limit == 0.0) powering_limit = 300.0;
  if (snr_limit == 0.0) snr_limit = 300.0;
  std::printf("  tag-powering limit (tag 2 m past relay):      %.0f m\n",
              powering_limit);
  std::printf("  uplink-SNR limit:                             %.0f m\n", snr_limit);
  std::printf("  deployable reader-relay range:                %.0f m\n",
              std::min({powering_limit, snr_limit,
                        channel::max_relay_range_m(weakest, 915e6)}));

  std::printf("\ndirect (relay-less) read range for comparison: %.1f m\n",
              channel::direct_powering_range_m(sys.reader_eirp_dbm,
                                               sys.tag.antenna_gain_dbi,
                                               sys.tag.sensitivity_dbm, 915e6));
  return 0;
}
